package ba_test

import (
	"fmt"
	"testing"

	"proxcensus/internal/adversary"
	"proxcensus/internal/ba"
	"proxcensus/internal/sim"
)

// splitInputs returns a non-unanimous honest input vector: the first
// honest party (ID t) holds 0, the rest hold 1.
func splitInputs(n, t int) []ba.Value {
	inputs := make([]ba.Value, n)
	for i := t + 1; i < n; i++ {
		inputs[i] = 1
	}
	return inputs
}

// measureFailureRate runs `trials` executions of the protocol built by
// `build` under `adv` and returns the number of runs with honest
// disagreement.
func measureFailureRate(t *testing.T, trials int,
	build func(seed int64) (*ba.Protocol, sim.Adversary)) int {
	t.Helper()
	failures := 0
	for trial := 0; trial < trials; trial++ {
		proto, adv := build(int64(trial))
		res, err := proto.Run(adv, int64(trial*7+1))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ba.CheckAgreement(ba.Decisions(res)); err != nil {
			failures++
		}
	}
	return failures
}

// checkRate asserts an empirical count is within ±5σ of a binomial
// expectation — loose enough to never flake on a fixed seed sequence,
// tight enough to catch a wrong constant (e.g. 1/2 vs 1/4).
func checkRate(t *testing.T, name string, failures, trials int, p float64) {
	t.Helper()
	mean := p * float64(trials)
	sigma := 5.0 * sqrt(mean*(1-p))
	if f := float64(failures); f < mean-sigma || f > mean+sigma {
		t.Errorf("%s: %d/%d failures, want about %.1f (±%.1f)", name, failures, trials, mean, sigma)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// TestIterFailureRateOneShot measures Theorem 1's bound for the
// one-shot t < n/3 protocol: under the adaptive straddle attack the
// disagreement probability is exactly 1/(s-1) = 2^-κ.
func TestIterFailureRateOneShot(t *testing.T) {
	const n, tc, trials = 4, 1, 1200
	for _, kappa := range []int{1, 2, 3} {
		kappa := kappa
		t.Run(fmt.Sprintf("kappa=%d", kappa), func(t *testing.T) {
			failures := measureFailureRate(t, trials, func(seed int64) (*ba.Protocol, sim.Adversary) {
				setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, seed*997+13)
				if err != nil {
					t.Fatal(err)
				}
				proto, err := ba.NewOneShot(setup, kappa, splitInputs(n, tc))
				if err != nil {
					t.Fatal(err)
				}
				return proto, &adversary.ExpandAdaptiveSplit{N: n, T: tc, Period: proto.Rounds}
			})
			checkRate(t, "oneshot", failures, trials, 1/float64(int(1)<<kappa))
		})
	}
}

// TestIterFailureRateFM: the FM baseline fails each 2-round iteration
// with probability 1/2 under the same attack; with κ=1 the overall
// failure rate is 1/2.
func TestIterFailureRateFM(t *testing.T) {
	const n, tc, trials = 4, 1, 1200
	failures := measureFailureRate(t, trials, func(seed int64) (*ba.Protocol, sim.Adversary) {
		setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, seed*991+7)
		if err != nil {
			t.Fatal(err)
		}
		proto, err := ba.NewFM(setup, 1, splitInputs(n, tc))
		if err != nil {
			t.Fatal(err)
		}
		return proto, &adversary.ExpandAdaptiveSplit{N: n, T: tc, Period: 2}
	})
	checkRate(t, "fm", failures, trials, 0.5)
}

// TestIterFailureRateHalf: one iteration of the t < n/2 protocol
// (3-round Prox_5, coin parallel) fails with probability 1/4.
func TestIterFailureRateHalf(t *testing.T) {
	const n, tc, trials = 3, 1, 1200
	failures := measureFailureRate(t, trials, func(seed int64) (*ba.Protocol, sim.Adversary) {
		setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, seed*983+11)
		if err != nil {
			t.Fatal(err)
		}
		proto, err := ba.NewHalf(setup, 2, splitInputs(n, tc)) // κ=2 -> 1 iteration
		if err != nil {
			t.Fatal(err)
		}
		return proto, &adversary.LinearAdaptiveSplit{N: n, T: tc, Period: 3, Keys: setup.ProxSKs[:tc]}
	})
	checkRate(t, "half", failures, trials, 0.25)
}

// TestIterFailureRateMV: one iteration of the MV baseline (2-round
// Prox_3, coin parallel) fails with probability 1/2.
func TestIterFailureRateMV(t *testing.T) {
	const n, tc, trials = 3, 1, 1200
	failures := measureFailureRate(t, trials, func(seed int64) (*ba.Protocol, sim.Adversary) {
		setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, seed*977+5)
		if err != nil {
			t.Fatal(err)
		}
		proto, err := ba.NewMV(setup, 1, splitInputs(n, tc))
		if err != nil {
			t.Fatal(err)
		}
		return proto, &adversary.LinearAdaptiveSplit{N: n, T: tc, Period: 2, Keys: setup.ProxSKs[:tc]}
	})
	checkRate(t, "mv", failures, trials, 0.5)
}

// TestIteratedErrorDecay: with κ=4 the half protocol runs two
// iterations; the attack must succeed in both to cause disagreement, so
// the failure rate drops to (1/4)^2 = 1/16.
func TestIteratedErrorDecay(t *testing.T) {
	const n, tc, trials = 3, 1, 1600
	failures := measureFailureRate(t, trials, func(seed int64) (*ba.Protocol, sim.Adversary) {
		setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, seed*1009+29)
		if err != nil {
			t.Fatal(err)
		}
		proto, err := ba.NewHalf(setup, 4, splitInputs(n, tc)) // 2 iterations
		if err != nil {
			t.Fatal(err)
		}
		return proto, &adversary.LinearAdaptiveSplit{N: n, T: tc, Period: 3, Keys: setup.ProxSKs[:tc]}
	})
	checkRate(t, "half-2iter", failures, trials, 1.0/16)
}

// TestAttackCannotBreakValidity: even the adaptive attacks are
// powerless when the honest parties agree beforehand.
func TestAttackCannotBreakValidity(t *testing.T) {
	const kappa = 4
	t.Run("oneshot", func(t *testing.T) {
		const n, tc = 4, 1
		setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, 5)
		if err != nil {
			t.Fatal(err)
		}
		proto, err := ba.NewOneShot(setup, kappa, constInputs(n, 1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := proto.Run(&adversary.ExpandAdaptiveSplit{N: n, T: tc, Period: proto.Rounds}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := ba.CheckValidity(1, ba.Decisions(res)); err != nil {
			t.Error(err)
		}
	})
	t.Run("half", func(t *testing.T) {
		const n, tc = 3, 1
		setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, 5)
		if err != nil {
			t.Fatal(err)
		}
		proto, err := ba.NewHalf(setup, kappa, constInputs(n, 0))
		if err != nil {
			t.Fatal(err)
		}
		adv := &adversary.LinearAdaptiveSplit{N: n, T: tc, Period: 3, Keys: setup.ProxSKs[:tc]}
		res, err := proto.Run(adv, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := ba.CheckValidity(0, ba.Decisions(res)); err != nil {
			t.Error(err)
		}
	})
}
