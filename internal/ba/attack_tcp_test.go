package ba_test

import (
	"testing"
	"time"

	"proxcensus/internal/ba"
	"proxcensus/internal/chaos"
	"proxcensus/internal/proxcensus"
	"proxcensus/internal/sim"
	"proxcensus/internal/transport"
	"proxcensus/internal/validate"
)

// The TCP ports of the simulator attack regressions: the slot-straddle
// and equivocator adversaries, replayed over the wire as Byzantine
// chaos roles with ingress screening on. The adaptive simulator
// attacks rush — they read honest round traffic before answering —
// which the hub's round barrier forbids, so the wire variants are
// static. The guarantees under test are the same ones the simulator
// regressions pin: Theorem 1 slot adjacency for graded consensus, and
// validity for the BA protocols whenever honest inputs agree.

// tcpCfg mirrors the chaos package's quick timing so a scheduled crash
// costs milliseconds, not the 30s production deadline.
func tcpCfg() transport.Config {
	return transport.Config{
		RoundTimeout: 300 * time.Millisecond,
		JoinTimeout:  2 * time.Second,
		DialTimeout:  time.Second,
		DialAttempts: 4,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
	}
}

// TestTCPStraddleExpandConsistency ports the expand slot-straddle to
// the wire: honest inputs split 0/1, the Byzantine node boosts one
// honest party and drags the rest down. Honest outputs may land in
// different slots, but Theorem 1's adjacency must hold — exactly what
// the simulator's ExpandAdaptiveSplit regressions check.
func TestTCPStraddleExpandConsistency(t *testing.T) {
	const n, tc, rounds = 4, 1, 3
	s, err := chaos.Parse("byz:3@straddle", n, tc, rounds)
	if err != nil {
		t.Fatal(err)
	}
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		input := 1
		if i == 0 {
			input = 0
		}
		machines[i] = proxcensus.NewExpandMachine(n, tc, rounds, input)
	}
	cfg := tcpCfg()
	cfg.NewIngress = func(int) *validate.Validator {
		return validate.New(validate.ForExpand(n, rounds, 1))
	}
	res, err := chaos.Run(machines, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]proxcensus.Result, 0, n)
	for _, id := range res.Survivors() {
		if res.Errs[id] != nil {
			t.Fatalf("honest node %d failed under straddle: %v", id, res.Errs[id])
		}
		results = append(results, res.Outputs[id].(proxcensus.Result))
	}
	if err := proxcensus.CheckConsistency(proxcensus.ExpandSlots(rounds), results); err != nil {
		t.Errorf("straddle broke slot adjacency over TCP: %v\noutputs: %v", err, results)
	}
}

// TestTCPAttackCannotBreakValidity ports the simulator's validity
// regressions: when the honest parties already agree, neither the
// equivocator nor the straddler can talk any of them out of it — over
// the wire, with every honest node screening its ingress.
func TestTCPAttackCannotBreakValidity(t *testing.T) {
	const kappa = 2
	t.Run("oneshot-equivocate", func(t *testing.T) {
		t.Parallel()
		tcpValidityRun(t, "oneshot", "byz:3@equivocate", 4, 1, kappa, 1)
	})
	t.Run("oneshot-straddle", func(t *testing.T) {
		t.Parallel()
		tcpValidityRun(t, "oneshot", "byz:3@straddle", 4, 1, kappa, 1)
	})
	t.Run("half-equivocate", func(t *testing.T) {
		t.Parallel()
		tcpValidityRun(t, "half", "byz:4@equivocate", 5, 2, kappa, 1)
	})
	t.Run("half-straddle", func(t *testing.T) {
		t.Parallel()
		tcpValidityRun(t, "half", "byz:4@straddle", 5, 2, kappa, 1)
	})
}

// tcpValidityRun executes one BA protocol over TCP under the given
// Byzantine spec with unanimous honest inputs and asserts every honest
// survivor decides that input.
func tcpValidityRun(t *testing.T, family, spec string, n, tc, kappa int, input ba.Value) {
	t.Helper()
	setup, err := ba.NewSetup(n, tc, ba.CoinThreshold, 7)
	if err != nil {
		t.Fatal(err)
	}
	var p *ba.Protocol
	cfg := tcpCfg()
	switch family {
	case "oneshot":
		p, err = ba.NewOneShot(setup, kappa, constInputs(n, input))
		cfg.NewIngress = func(int) *validate.Validator {
			return validate.New(validate.ForOneShot(n, kappa, 1, setup.CoinPK))
		}
	case "half":
		p, err = ba.NewHalf(setup, kappa, constInputs(n, input))
		cfg.NewIngress = func(int) *validate.Validator {
			return validate.New(validate.ForHalf(n, setup.CoinPK, setup.ProxPK))
		}
	default:
		t.Fatalf("unknown family %q", family)
	}
	if err != nil {
		t.Fatal(err)
	}
	s, err := chaos.Parse(spec, n, tc, p.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chaos.Run(p.Machines, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckAgreement(); err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}
	for _, id := range res.Survivors() {
		if v := res.Outputs[id].(ba.Value); v != input {
			t.Errorf("spec %q: survivor %d decided %d, want %d (validity)", spec, id, v, input)
		}
	}
}
