package ba_test

import (
	"fmt"
	"math/rand"
	"testing"

	"proxcensus/internal/adversary"
	"proxcensus/internal/ba"
	"proxcensus/internal/sim"
)

const mvDefault = -1 // default output when the binary BA decides 0

// mvBuilder uniformly constructs the two multivalued protocols.
type mvBuilder struct {
	name   string
	needs  int
	rounds func(kappa int) int
	build  func(setup *ba.Setup, kappa int, inputs []ba.Value) (*ba.Protocol, error)
}

func mvBuilders() []mvBuilder {
	return []mvBuilder{
		{"mv-oneshot", 3, ba.MultivaluedOneShotRounds,
			func(s *ba.Setup, k int, in []ba.Value) (*ba.Protocol, error) {
				return ba.NewMultivaluedOneShot(s, k, in, mvDefault)
			}},
		{"mv-half", 2, ba.MultivaluedHalfRounds,
			func(s *ba.Setup, k int, in []ba.Value) (*ba.Protocol, error) {
				return ba.NewMultivaluedHalf(s, k, in, mvDefault)
			}},
	}
}

func TestMultivaluedOverheadRounds(t *testing.T) {
	// E6: the multivalued extension costs exactly +2 rounds for t<n/3
	// and +3 rounds for t<n/2 (Section 3.5).
	for _, kappa := range []int{4, 8, 9} {
		if got, want := ba.MultivaluedOneShotRounds(kappa), ba.OneShotRounds(kappa)+2; got != want {
			t.Errorf("MultivaluedOneShotRounds(%d) = %d, want %d", kappa, got, want)
		}
		if got, want := ba.MultivaluedHalfRounds(kappa), ba.HalfRounds(kappa)+3; got != want {
			t.Errorf("MultivaluedHalfRounds(%d) = %d, want %d", kappa, got, want)
		}
	}
}

func TestMultivaluedValidity(t *testing.T) {
	const kappa = 5
	for _, b := range mvBuilders() {
		for _, v := range []ba.Value{0, 1, 7, 100000} {
			t.Run(fmt.Sprintf("%s/v=%d", b.name, v), func(t *testing.T) {
				n, tc := 7, 2
				if b.needs == 2 {
					n, tc = 5, 2
				}
				setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, 21)
				if err != nil {
					t.Fatal(err)
				}
				proto, err := b.build(setup, kappa, constInputs(n, v))
				if err != nil {
					t.Fatal(err)
				}
				if proto.Rounds != b.rounds(kappa) {
					t.Fatalf("rounds = %d, want %d", proto.Rounds, b.rounds(kappa))
				}
				for _, adv := range []sim.Adversary{
					sim.Passive{},
					&adversary.Crash{Victims: adversary.FirstT(tc)},
				} {
					res, err := proto.Run(adv, 6)
					if err != nil {
						t.Fatalf("adversary %s: %v", adv.Name(), err)
					}
					if err := ba.CheckValidity(v, ba.Decisions(res)); err != nil {
						t.Errorf("adversary %s: %v", adv.Name(), err)
					}
					// Machines are single-use; rebuild for the next run.
					proto, err = b.build(setup, kappa, constInputs(n, v))
					if err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

func TestMultivaluedAgreementMixedInputs(t *testing.T) {
	const kappa, trials = 8, 15
	for _, b := range mvBuilders() {
		t.Run(b.name, func(t *testing.T) {
			n, tc := 7, 2
			if b.needs == 2 {
				n, tc = 5, 2
			}
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(int64(trial * 3)))
				inputs := make([]ba.Value, n)
				for i := range inputs {
					inputs[i] = rng.Intn(4) * 11 // values from {0, 11, 22, 33}
				}
				setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, int64(trial*37+5))
				if err != nil {
					t.Fatal(err)
				}
				proto, err := b.build(setup, kappa, inputs)
				if err != nil {
					t.Fatal(err)
				}
				res, err := proto.Run(&adversary.Crash{Victims: adversary.FirstT(tc)}, int64(trial))
				if err != nil {
					t.Fatal(err)
				}
				decisions := ba.Decisions(res)
				if err := ba.CheckAgreement(decisions); err != nil {
					t.Fatalf("trial %d inputs %v: %v", trial, inputs, err)
				}
				// The common decision must be an input value or the default
				// (no invented values).
				legal := map[ba.Value]bool{mvDefault: true}
				for _, v := range inputs[tc:] {
					legal[v] = true
				}
				if len(decisions) > 0 && !legal[decisions[0]] {
					t.Fatalf("trial %d: decided %d, not an honest input or default", trial, decisions[0])
				}
			}
		})
	}
}

func TestMultivaluedStrongUnanimityAmongHonest(t *testing.T) {
	// Honest parties agree on 42; corrupted parties push 13 hard. The
	// decision must be 42.
	const kappa = 6
	t.Run("oneshot", func(t *testing.T) {
		const n, tc = 7, 2
		setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, 11)
		if err != nil {
			t.Fatal(err)
		}
		inputs := constInputs(n, 42)
		proto, err := ba.NewMultivaluedOneShot(setup, kappa, inputs, mvDefault)
		if err != nil {
			t.Fatal(err)
		}
		adv := &adversary.Equivocator{
			Victims: adversary.FirstT(tc),
			A:       ba.TCValue{V: 13},
			B:       ba.TCValue{V: 13},
		}
		res, err := proto.Run(adv, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := ba.CheckValidity(42, ba.Decisions(res)); err != nil {
			t.Error(err)
		}
	})
	t.Run("half", func(t *testing.T) {
		const n, tc = 5, 2
		setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, 11)
		if err != nil {
			t.Fatal(err)
		}
		proto, err := ba.NewMultivaluedHalf(setup, kappa, constInputs(n, 42), mvDefault)
		if err != nil {
			t.Fatal(err)
		}
		res, err := proto.Run(&adversary.Crash{Victims: adversary.FirstT(tc)}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := ba.CheckValidity(42, ba.Decisions(res)); err != nil {
			t.Error(err)
		}
	})
}

func TestMultivaluedThresholdCoin(t *testing.T) {
	const kappa = 4
	for _, b := range mvBuilders() {
		t.Run(b.name, func(t *testing.T) {
			n, tc := 7, 2
			if b.needs == 2 {
				n, tc = 5, 2
			}
			setup, err := ba.NewSetup(n, tc, ba.CoinThreshold, 31)
			if err != nil {
				t.Fatal(err)
			}
			proto, err := b.build(setup, kappa, constInputs(n, 3))
			if err != nil {
				t.Fatal(err)
			}
			res, err := proto.Run(&adversary.Crash{Victims: adversary.FirstT(tc)}, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := ba.CheckValidity(3, ba.Decisions(res)); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMultivaluedResilienceValidation(t *testing.T) {
	setup12, err := ba.NewSetup(5, 2, ba.CoinIdeal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ba.NewMultivaluedOneShot(setup12, 4, constInputs(5, 0), mvDefault); err == nil {
		t.Error("multivalued one-shot with t >= n/3 must fail")
	}
	setupBadHalf, err := ba.NewSetup(4, 2, ba.CoinIdeal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ba.NewMultivaluedHalf(setupBadHalf, 4, constInputs(4, 0), mvDefault); err == nil {
		t.Error("multivalued half with t >= n/2 must fail")
	}
}

// TestMultivaluedEdgeCases table-drives the Turpin-Coan corner cases
// from Section 3.5: unanimous default (all-⊥) inputs, a full budget of
// t equivocating senders splitting the prefix, and the t < n/2
// variant's +3-round boundary at the smallest security parameters.
func TestMultivaluedEdgeCases(t *testing.T) {
	// The half-regime prefix costs exactly 3 extra rounds even at the
	// boundary kappas where the binary core is shortest.
	for _, kappa := range []int{1, 2, 3} {
		if got, want := ba.MultivaluedHalfRounds(kappa), ba.HalfRounds(kappa)+3; got != want {
			t.Errorf("MultivaluedHalfRounds(%d) = %d, want %d", kappa, got, want)
		}
		if got, want := ba.MultivaluedOneShotRounds(kappa), ba.OneShotRounds(kappa)+2; got != want {
			t.Errorf("MultivaluedOneShotRounds(%d) = %d, want %d", kappa, got, want)
		}
	}

	for _, b := range mvBuilders() {
		n, tc := 7, 2
		if b.needs == 2 {
			n, tc = 5, 2
		}
		// splitHonest gives the honest parties two distinct values, so no
		// candidate is forced and the equivocators can matter.
		splitHonest := make([]ba.Value, n)
		for i := tc; i < n; i++ {
			splitHonest[i] = 17
			if i >= tc+(n-tc)/2 {
				splitHonest[i] = 29
			}
		}
		cases := []struct {
			name   string
			kappa  int
			inputs []ba.Value
			adv    sim.Adversary
			// want < 0 with wantAny set means any agreed-upon legal value.
			want    ba.Value
			wantAny bool
		}{
			{
				name: "all-bot-inputs", kappa: 4,
				inputs: constInputs(n, mvDefault),
				adv:    &adversary.Crash{Victims: adversary.FirstT(tc)},
				want:   mvDefault,
			},
			{
				name: "all-bot-inputs-equivocators", kappa: 4,
				inputs: constInputs(n, mvDefault),
				adv: &adversary.Equivocator{
					Victims: adversary.FirstT(tc),
					A:       ba.TCValue{V: 5}, B: ba.TCValue{V: 9},
				},
				want: mvDefault,
			},
			{
				name: "t-equivocating-senders", kappa: 4,
				inputs: splitHonest,
				adv: &adversary.Equivocator{
					Victims: adversary.FirstT(tc),
					A:       ba.TCValue{V: 5}, B: ba.TCValue{V: 9},
				},
				wantAny: true,
			},
			{
				name: "boundary-kappa-1", kappa: 1,
				inputs: constInputs(n, 7),
				adv:    sim.Passive{},
				want:   7,
			},
			{
				name: "boundary-kappa-2-crash", kappa: 2,
				inputs: constInputs(n, 1000),
				adv:    &adversary.Crash{Victims: adversary.FirstT(tc)},
				want:   1000,
			},
		}
		for _, c := range cases {
			c := c
			t.Run(fmt.Sprintf("%s/%s", b.name, c.name), func(t *testing.T) {
				setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, 23)
				if err != nil {
					t.Fatal(err)
				}
				proto, err := b.build(setup, c.kappa, c.inputs)
				if err != nil {
					t.Fatal(err)
				}
				if proto.Rounds != b.rounds(c.kappa) {
					t.Fatalf("rounds = %d, want %d", proto.Rounds, b.rounds(c.kappa))
				}
				res, err := proto.Run(c.adv, 9)
				if err != nil {
					t.Fatal(err)
				}
				decisions := ba.Decisions(res)
				if err := ba.CheckAgreement(decisions); err != nil {
					t.Fatal(err)
				}
				if c.wantAny {
					// No invented values: the decision is an honest input or
					// the default, even with t senders equivocating.
					legal := map[ba.Value]bool{mvDefault: true}
					for _, v := range c.inputs[tc:] {
						legal[v] = true
					}
					if len(decisions) > 0 && !legal[decisions[0]] {
						t.Fatalf("decided %d, not an honest input or the default", decisions[0])
					}
					return
				}
				if err := ba.CheckValidity(c.want, decisions); err != nil {
					t.Error(err)
				}
			})
		}
	}
}
