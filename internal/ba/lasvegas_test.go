package ba_test

import (
	"testing"

	"proxcensus/internal/adversary"
	"proxcensus/internal/ba"
	proxcensus2 "proxcensus/internal/proxcensus"
	"proxcensus/internal/sim"
)

func runLV(t *testing.T, n, tc int, inputs []ba.Value, adv sim.Adversary, seed int64) []ba.LVDecision {
	t.Helper()
	setup, err := ba.NewSetup(n, tc, ba.CoinIdeal, seed*3+1)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := ba.NewLasVegas(setup, 40, inputs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(adv, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ba.LVDecisions(res)
}

func TestLasVegasUnanimousDecidesInOneIteration(t *testing.T) {
	const n, tc = 7, 2
	for _, v := range []ba.Value{0, 1} {
		decisions := runLV(t, n, tc, constInputs(n, v), sim.Passive{}, 4)
		if len(decisions) != n {
			t.Fatalf("%d decisions", len(decisions))
		}
		for _, d := range decisions {
			if d.Value != v {
				t.Errorf("decided %d, want %d", d.Value, v)
			}
			if d.DecidedRound != ba.LVRoundsPerIteration {
				t.Errorf("decided at round %d, want %d (first iteration)", d.DecidedRound, ba.LVRoundsPerIteration)
			}
			if d.HaltedRound != 2*ba.LVRoundsPerIteration {
				t.Errorf("halted at round %d, want %d (courtesy iteration)", d.HaltedRound, 2*ba.LVRoundsPerIteration)
			}
		}
	}
}

func TestLasVegasAgreementAndSpread(t *testing.T) {
	const n, tc, trials = 7, 2, 40
	totalHalt, maxSpread := 0, 0
	for trial := 0; trial < trials; trial++ {
		inputs := splitInputs(n, tc)
		decisions := runLV(t, n, tc, inputs, &adversary.Crash{Victims: adversary.FirstT(tc)}, int64(trial))
		first := decisions[0].Value
		lo, hi := decisions[0].HaltedRound, decisions[0].HaltedRound
		for _, d := range decisions {
			if d.Value != first {
				t.Fatalf("trial %d: disagreement %v", trial, decisions)
			}
			if d.HaltedRound < lo {
				lo = d.HaltedRound
			}
			if d.HaltedRound > hi {
				hi = d.HaltedRound
			}
		}
		spread := hi - lo
		if spread > ba.LVRoundsPerIteration {
			t.Fatalf("trial %d: halt spread %d exceeds one iteration", trial, spread)
		}
		if spread > maxSpread {
			maxSpread = spread
		}
		totalHalt += hi
	}
	// Expected-constant termination: the mean worst halt round should be
	// a small constant, far below the 40-iteration budget.
	mean := float64(totalHalt) / float64(trials)
	if mean > 5*ba.LVRoundsPerIteration {
		t.Errorf("mean worst halt round %.1f — expected constant (few iterations)", mean)
	}
	_ = maxSpread // symmetric adversaries produce single-wave decisions
}

// TestLasVegasStaggeredTermination forces the Dwork-Moses phenomenon:
// an asymmetric round-1 attack leaves one honest party at grade 1 while
// the rest reach grade 2, so the victim decides one iteration later and
// the honest halt rounds differ — no fixed-round protocol ever does
// this.
func TestLasVegasStaggeredTermination(t *testing.T) {
	const n, tc, victim = 7, 2, 2
	inputs := splitInputs(n, tc) // party 2 holds 0, parties 3..6 hold 1
	adv := &adversary.Func{
		StrategyName: "lv-stagger",
		InitFunc:     func(env *sim.Env) { adversary.CorruptSet(env, adversary.FirstT(tc)) },
		ActFunc: func(round int, _ []sim.Message, env *sim.Env) []sim.Message {
			if round > 2 {
				return nil // only iteration 1 is attacked
			}
			var msgs []sim.Message
			for from := 0; from < tc; from++ {
				for to := tc; to < n; to++ {
					p := proxcensus2.EchoPayload{Z: 1, H: 0}
					if round == 2 {
						p.H = 1
					}
					if to == victim {
						p = proxcensus2.EchoPayload{Z: 0, H: 0}
					}
					msgs = append(msgs, sim.Message{From: from, To: to, Payload: p})
				}
			}
			return msgs
		},
	}
	decisions := runLV(t, n, tc, inputs, adv, 3)
	halts := map[int]int{}
	for _, d := range decisions {
		if d.Value != 1 {
			t.Fatalf("decided %d, want 1", d.Value)
		}
		halts[d.HaltedRound]++
	}
	if len(halts) != 2 {
		t.Fatalf("halt rounds %v: want exactly two waves", halts)
	}
	// Four parties halt after iteration 2, the victim after iteration 3.
	if halts[2*ba.LVRoundsPerIteration] != 4 || halts[3*ba.LVRoundsPerIteration] != 1 {
		t.Errorf("halt rounds %v: want 4 at round %d and 1 at round %d",
			halts, 2*ba.LVRoundsPerIteration, 3*ba.LVRoundsPerIteration)
	}
}

func TestLasVegasValidityUnderWorstCase(t *testing.T) {
	const n, tc = 4, 1
	decisions := runLV(t, n, tc, constInputs(n, 1), &adversary.ExpandAdaptiveSplit{N: n, T: tc, Period: 1 << 30}, 9)
	for _, d := range decisions {
		if d.Value != 1 {
			t.Errorf("validity broken: decided %d", d.Value)
		}
	}
}

func TestLasVegasResilienceValidation(t *testing.T) {
	setup, err := ba.NewSetup(5, 2, ba.CoinIdeal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ba.NewLasVegas(setup, 10, constInputs(5, 0)); err == nil {
		t.Error("Las Vegas with t >= n/3 must fail")
	}
}
