package coin

import (
	"errors"
	"testing"
	"testing/quick"

	"proxcensus/internal/crypto/threshsig"
	"proxcensus/internal/sim"
)

func TestOracleRange(t *testing.T) {
	o := NewOracle(16, 7)
	if o.Range() != 16 {
		t.Fatalf("Range = %d, want 16", o.Range())
	}
	for k := 0; k < 1000; k++ {
		v := o.reveal(k)
		if v < 1 || v > 16 {
			t.Fatalf("Coin_%d = %d out of [1,16]", k, v)
		}
	}
}

func TestOracleDeterministicPerSeed(t *testing.T) {
	a, b := NewOracle(8, 3), NewOracle(8, 3)
	c := NewOracle(8, 4)
	same, diff := true, true
	for k := 0; k < 64; k++ {
		if a.reveal(k) != b.reveal(k) {
			same = false
		}
		if a.value(k) != c.value(k) {
			diff = false
		}
	}
	if !same {
		t.Error("same seed must give identical coins")
	}
	if diff {
		t.Error("different seeds should give different coin sequences")
	}
}

func TestOraclePeekOnlyAfterReveal(t *testing.T) {
	o := NewOracle(4, 1)
	if _, ok := o.Peek(5); ok {
		t.Fatal("Peek before any honest query must fail")
	}
	c := NewIdealComponent(o)
	c.Sends(5) // honest party enters the coin round
	v, ok := o.Peek(5)
	if !ok {
		t.Fatal("Peek after reveal must succeed")
	}
	got, err := c.Value(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Errorf("component value %d != peeked value %d", got, v)
	}
	if _, ok := o.Peek(6); ok {
		t.Error("instance 6 was never queried; Peek must fail")
	}
}

func TestOracleRoughUniformity(t *testing.T) {
	const rangeN, samples = 4, 4000
	o := NewOracle(rangeN, 99)
	counts := make([]int, rangeN+1)
	for k := 0; k < samples; k++ {
		counts[o.reveal(k)]++
	}
	want := samples / rangeN
	for v := 1; v <= rangeN; v++ {
		if counts[v] < want/2 || counts[v] > want*2 {
			t.Errorf("value %d appeared %d times, want ~%d", v, counts[v], want)
		}
	}
}

func dealCoin(t *testing.T, n, thresh int) (*threshsig.PublicKey, []*threshsig.SecretKey) {
	t.Helper()
	var seed [threshsig.Size]byte
	seed[0] = 0xc0
	pk, sks, err := threshsig.Deal(n, thresh, seed)
	if err != nil {
		t.Fatal(err)
	}
	return pk, sks
}

func thresholdParties(pk *threshsig.PublicKey, sks []*threshsig.SecretKey, rangeN int) []*Threshold {
	out := make([]*Threshold, len(sks))
	for i, sk := range sks {
		out[i] = NewThreshold(pk, sk, rangeN, "test")
	}
	return out
}

// collectRound simulates one broadcast round of coin shares among the
// given parties and returns every party's inbox.
func collectRound(tcs []*Threshold, k int, senders []int) []sim.Message {
	inbox := make([]sim.Message, 0, len(senders))
	for _, i := range senders {
		for _, s := range tcs[i].Sends(k) {
			inbox = append(inbox, sim.Message{From: i, To: 0, Round: 1, Payload: s.Payload})
		}
	}
	return inbox
}

func TestThresholdCoinAgreement(t *testing.T) {
	const n, tcorr, rangeN = 7, 2, 9
	pk, sks := dealCoin(t, n, tcorr+1)
	tcs := thresholdParties(pk, sks, rangeN)

	all := []int{0, 1, 2, 3, 4, 5, 6}
	inbox := collectRound(tcs, 3, all)
	var first int
	for i, tc := range tcs {
		v, err := tc.Value(3, inbox)
		if err != nil {
			t.Fatalf("party %d: %v", i, err)
		}
		if v < 1 || v > rangeN {
			t.Fatalf("party %d coin %d out of [1,%d]", i, v, rangeN)
		}
		if i == 0 {
			first = v
		} else if v != first {
			t.Fatalf("party %d coin %d != party 0 coin %d", i, v, first)
		}
	}

	// Different subsets above the threshold agree too (uniqueness).
	sub := collectRound(tcs, 3, []int{4, 5, 6})
	v, err := tcs[0].Value(3, sub)
	if err != nil {
		t.Fatal(err)
	}
	if v != first {
		t.Errorf("subset-combined coin %d != full coin %d", v, first)
	}
}

func TestThresholdCoinInsufficient(t *testing.T) {
	const n, tcorr = 7, 2
	pk, sks := dealCoin(t, n, tcorr+1)
	tcs := thresholdParties(pk, sks, 4)
	inbox := collectRound(tcs, 0, []int{1, 2}) // only 2 < t+1 = 3 shares
	if _, err := tcs[0].Value(0, inbox); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("err = %v, want ErrNotEnoughShares", err)
	}
}

func TestThresholdCoinIgnoresGarbage(t *testing.T) {
	const n, tcorr = 4, 1
	pk, sks := dealCoin(t, n, tcorr+1)
	tcs := thresholdParties(pk, sks, 8)
	inbox := collectRound(tcs, 7, []int{0}) // 1 < threshold = 2 genuine shares
	// Garbage: wrong instance, spoofed signer, alien payload type.
	wrongK := tcs[2].Sends(8)[0].Payload.(SharePayload)
	inbox = append(inbox,
		sim.Message{From: 2, To: 0, Payload: wrongK},
		sim.Message{From: 3, To: 0, Payload: SharePayload{K: 7, Share: threshsig.SignShare(sks[2], tcs[2].InstanceMessage(7))}}, // signer!=From
		sim.Message{From: 2, To: 0, Payload: nil},
	)
	if _, err := tcs[0].Value(7, inbox); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("err = %v: garbage must not count toward the threshold", err)
	}
	// Add a genuinely missing honest share: now it reconstructs.
	inbox = append(inbox, collectRound(tcs, 7, []int{1})...)
	if _, err := tcs[0].Value(7, inbox); err != nil {
		t.Fatalf("coin with 2 honest + 1 more share: %v", err)
	}
}

func TestThresholdCoinInstanceSeparation(t *testing.T) {
	const n = 4
	pk, sks := dealCoin(t, n, 2)
	tcs := thresholdParties(pk, sks, 1<<16)
	all := []int{0, 1, 2, 3}
	v1, err := tcs[0].Value(1, collectRound(tcs, 1, all))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := tcs[0].Value(2, collectRound(tcs, 2, all))
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Errorf("instances 1 and 2 both yielded %d; with range 2^16 a collision is near-impossible", v1)
	}

	other := NewThreshold(pk, sks[0], 1<<16, "otherdomain")
	if string(other.InstanceMessage(1)) == string(tcs[0].InstanceMessage(1)) {
		t.Error("different domains must sign different instance messages")
	}
}

func TestSharePayloadAccounting(t *testing.T) {
	p := SharePayload{}
	if p.SigCount() != 1 {
		t.Errorf("SigCount = %d, want 1", p.SigCount())
	}
	if p.ByteSize() <= threshsig.Size {
		t.Errorf("ByteSize = %d, want > %d", p.ByteSize(), threshsig.Size)
	}
}

func TestQuickReduceRange(t *testing.T) {
	f := func(seed int64, k uint16, r uint8) bool {
		rangeN := int(r)%63 + 1
		o := NewOracle(rangeN, seed)
		v := o.value(int(k))
		return v >= 1 && v <= rangeN
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerOfTwoRangeExactUniform(t *testing.T) {
	// For range 2^k the reduction uses the low bits of the hash; check
	// both halves occur.
	o := NewOracle(2, 5)
	ones, twos := 0, 0
	for k := 0; k < 256; k++ {
		switch o.value(k) {
		case 1:
			ones++
		case 2:
			twos++
		default:
			t.Fatalf("coin out of range")
		}
	}
	if ones == 0 || twos == 0 {
		t.Errorf("degenerate coin: ones=%d twos=%d", ones, twos)
	}
}

// TestThresholdCoinUnpredictableWithoutHonestShare: the adversary's t
// shares alone cannot reconstruct the coin — the threshold is t+1, so
// Coin_k stays hidden until the first honest share is in flight
// (Section 2.2's unpredictability property, enforced structurally).
func TestThresholdCoinUnpredictableWithoutHonestShare(t *testing.T) {
	const n, tcorr = 7, 3
	pk, sks := dealCoin(t, n, tcorr+1)
	tcs := thresholdParties(pk, sks, 16)
	// The adversary holds keys 0..tcorr-1 and signs the instance itself.
	msg := tcs[0].InstanceMessage(4)
	shares := make([]threshsig.Share, 0, tcorr)
	for i := 0; i < tcorr; i++ {
		shares = append(shares, threshsig.SignShare(sks[i], msg))
	}
	if _, err := threshsig.CombineFiltered(pk, msg, shares); !errors.Is(err, threshsig.ErrInsufficientShares) {
		t.Fatalf("t corrupted shares combined into a coin: %v", err)
	}
	// One honest share later, the coin is public — to everyone.
	shares = append(shares, threshsig.SignShare(sks[tcorr], msg))
	sig, err := threshsig.CombineFiltered(pk, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	v := ValueFromSignature(sig, 16)
	inbox := collectRound(tcs, 4, []int{3, 4, 5, 6})
	honest, err := tcs[6].Value(4, inbox)
	if err != nil {
		t.Fatal(err)
	}
	if honest != v {
		t.Errorf("adversary-computed coin %d != honest coin %d (uniqueness)", v, honest)
	}
}
