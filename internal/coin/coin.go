// Package coin implements the paper's CoinFlip primitive (Section 2.2):
// on input an instance index k it yields a value Coin_k uniform in
// [1, Range], which stays uniform from the adversary's view until the
// first honest party queries instance k.
//
// Two instantiations are provided, selectable per experiment:
//
//   - Oracle: the ideal 1-round multivalued coin the paper's round
//     comparisons assume. The value is a deterministic hash of
//     (seed, k); it is revealed to the adversary exactly when the first
//     honest party enters the coin round (1-fairness).
//
//   - Threshold: the real construction from unique threshold signatures
//     in the random-oracle model [16]: every party broadcasts a
//     signature share on k, any t+1 valid shares combine into the unique
//     signature Σ_k, and Coin_k = H(Σ_k) reduced into the range.
//     Unforgeability keeps Coin_k hidden until an honest share is sent;
//     uniqueness makes all parties agree on it.
//
// Both are exposed through the per-party Component interface so protocol
// machines are agnostic to the choice.
package coin

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"proxcensus/internal/crypto/threshsig"
	"proxcensus/internal/sim"
)

// ErrNotEnoughShares indicates the threshold coin could not be
// reconstructed from the delivered messages. With an honest majority and
// threshold t+1 this cannot happen in a synchronous round.
var ErrNotEnoughShares = errors.New("coin: not enough valid shares")

// Component is one party's participant in the coin protocol. A protocol
// machine calls Sends when entering the coin round for instance k and
// Value with that round's delivered messages.
type Component interface {
	// Range returns the size of the coin domain; values are in
	// [1, Range()].
	Range() int
	// Sends returns the messages this party broadcasts in the coin round
	// of instance k (none for the ideal coin).
	Sends(k int) []sim.Send
	// Value extracts Coin_k from the messages delivered in the coin
	// round. Messages of other payload types or instances are ignored.
	Value(k int, in []sim.Message) (int, error)
}

// Oracle is the shared ideal-coin functionality of one execution. All
// honest parties' IdealComponent handles reference a single Oracle.
// It is safe for concurrent use.
type Oracle struct {
	rangeN int
	seed   int64

	mu       sync.Mutex
	revealed map[int]bool
}

// NewOracle creates an ideal coin over [1, rangeN], deterministic in
// seed.
func NewOracle(rangeN int, seed int64) *Oracle {
	return &Oracle{rangeN: rangeN, seed: seed, revealed: make(map[int]bool)}
}

// Range returns the coin domain size.
func (o *Oracle) Range() int { return o.rangeN }

// reveal marks instance k as queried by an honest party and returns its
// value.
func (o *Oracle) reveal(k int) int {
	o.mu.Lock()
	o.revealed[k] = true
	o.mu.Unlock()
	return o.value(k)
}

// Peek is the adversary's access: it returns Coin_k only once an honest
// party has queried instance k. Before that the value is information-
// theoretically hidden from the adversary (it is never computed for it).
func (o *Oracle) Peek(k int) (int, bool) {
	o.mu.Lock()
	ok := o.revealed[k]
	o.mu.Unlock()
	if !ok {
		return 0, false
	}
	return o.value(k), true
}

// value hashes (seed, k) into [1, rangeN].
func (o *Oracle) value(k int) int {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(o.seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(k))
	h := sha256.Sum256(buf[:])
	return reduce(h, o.rangeN)
}

// IdealComponent adapts an Oracle to the Component interface. Entering
// the coin round (Sends) reveals the instance to the adversary, matching
// the rushing model: corrupted parties learn the coin in the round it is
// flipped, not earlier.
type IdealComponent struct {
	oracle *Oracle
}

var _ Component = (*IdealComponent)(nil)

// NewIdealComponent returns a party handle on the shared oracle.
func NewIdealComponent(o *Oracle) *IdealComponent { return &IdealComponent{oracle: o} }

// Range implements Component.
func (c *IdealComponent) Range() int { return c.oracle.rangeN }

// Sends implements Component. The ideal coin costs a round but no
// messages.
func (c *IdealComponent) Sends(k int) []sim.Send {
	c.oracle.reveal(k)
	return nil
}

// Value implements Component.
func (c *IdealComponent) Value(k int, _ []sim.Message) (int, error) {
	return c.oracle.reveal(k), nil
}

// SharePayload carries one party's threshold-signature share for coin
// instance k.
type SharePayload struct {
	// K is the coin instance index.
	K int
	// Share is the sender's signature share on the instance message.
	Share threshsig.Share
}

var _ sim.Payload = SharePayload{}

// SigCount implements sim.Payload.
func (SharePayload) SigCount() int { return 1 }

// ByteSize implements sim.Payload: instance index + signer index +
// share MAC.
func (SharePayload) ByteSize() int { return 8 + 8 + threshsig.Size }

// Threshold is one party's handle on the threshold-signature coin. The
// scheme must have been dealt with threshold t+1 so that the adversary's
// t shares reveal nothing, while the n-t >= t+1 honest shares always
// reconstruct.
type Threshold struct {
	pk     *threshsig.PublicKey
	sk     *threshsig.SecretKey
	rangeN int
	domain string
}

var _ Component = (*Threshold)(nil)

// NewThreshold creates the party's coin component. domain separates coin
// instances of different protocol executions sharing a key setup.
func NewThreshold(pk *threshsig.PublicKey, sk *threshsig.SecretKey, rangeN int, domain string) *Threshold {
	return &Threshold{pk: pk, sk: sk, rangeN: rangeN, domain: domain}
}

// Range implements Component.
func (t *Threshold) Range() int { return t.rangeN }

// InstanceMessage returns the byte string signed for coin instance k
// in the given domain. Exported at package level so admission-time
// share verification (internal/validate) can reconstruct it without a
// party handle.
func InstanceMessage(domain string, k int) []byte {
	return []byte(fmt.Sprintf("coin/%s/%d", domain, k))
}

// InstanceMessage returns the message signed for coin instance k.
func (t *Threshold) InstanceMessage(k int) []byte {
	return InstanceMessage(t.domain, k)
}

// Sends implements Component: broadcast this party's share on k.
func (t *Threshold) Sends(k int) []sim.Send {
	return sim.BroadcastSend(SharePayload{K: k, Share: threshsig.SignShare(t.sk, t.InstanceMessage(k))})
}

// Value implements Component: filter shares for instance k, combine, and
// hash the unique signature into the range.
func (t *Threshold) Value(k int, in []sim.Message) (int, error) {
	msg := t.InstanceMessage(k)
	shares := make([]threshsig.Share, 0, len(in))
	for _, m := range in {
		p, ok := m.Payload.(SharePayload)
		if !ok || p.K != k {
			continue
		}
		// Authenticated channels: only accept a share claimed by its
		// actual sender, so a Byzantine party cannot replay an honest
		// share it has not seen (it could anyway only replay real ones).
		if p.Share.Signer != m.From {
			continue
		}
		shares = append(shares, p.Share)
	}
	sig, err := threshsig.CombineFiltered(t.pk, msg, shares)
	if err != nil {
		return 0, fmt.Errorf("%w: instance %d: %v", ErrNotEnoughShares, k, err)
	}
	return ValueFromSignature(sig, t.rangeN), nil
}

// ValueFromSignature hashes a combined signature into [1, rangeN]; this
// is the random-oracle step. Any holder of the unique signature computes
// the same value — including the adversary the moment it sees t+1 shares.
func ValueFromSignature(sig threshsig.Signature, rangeN int) int {
	return reduce(sha256.Sum256(sig[:]), rangeN)
}

// reduce maps a hash into [1, rangeN]. For power-of-two ranges (the
// one-shot BA uses rangeN = 2^κ) the reduction is exactly uniform; for
// small odd ranges the modulo bias over 64 bits is below 2^-50.
func reduce(h [sha256.Size]byte, rangeN int) int {
	v := binary.BigEndian.Uint64(h[:8]) >> 1 // keep it positive as int64
	return int(v%uint64(rangeN)) + 1
}
