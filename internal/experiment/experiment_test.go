package experiment_test

import (
	"bytes"
	"strings"
	"testing"

	"proxcensus/internal/experiment"
)

// specExpand returns a small valid expand spec tests mutate.
func specExpand() *experiment.Spec {
	return &experiment.Spec{
		Name: "unit", Family: experiment.FamilyExpand,
		N: 4, T: 1, Rounds: 3,
		FaultsTo: -1, SeedCount: 2, SeedBase: 1,
	}
}

// TestSpecValidatePreFlight locks the pre-flight contract: every bad
// parameter is rejected with a pointed error before any socket opens.
func TestSpecValidatePreFlight(t *testing.T) {
	cases := map[string]struct {
		mutate func(*experiment.Spec)
		want   string
	}{
		"no name":          {func(s *experiment.Spec) { s.Name = "" }, "needs a name"},
		"unknown family":   {func(s *experiment.Spec) { s.Family = "bogus" }, "unknown family"},
		"zero rounds":      {func(s *experiment.Spec) { s.Rounds = 0 }, "rounds >= 1"},
		"quorum violation": {func(s *experiment.Spec) { s.N = 4; s.T = 2 }, "requires 3t < n"},
		"bad frame":        {func(s *experiment.Spec) { s.T = 4 }, "invalid frame"},
		"bad input":        {func(s *experiment.Spec) { v := 7; s.Input = &v }, "input must be 0 or 1"},
		"sweep past t":     {func(s *experiment.Spec) { s.FaultsTo = 2 }, "exceeds budget"},
		"empty sweep":      {func(s *experiment.Spec) { s.FaultsFrom = 1; s.FaultsTo = 0 }, "empty fault sweep"},
		"negative sweep":   {func(s *experiment.Spec) { s.FaultsFrom = -2 }, "invalid fault sweep"},
		"no seeds":         {func(s *experiment.Spec) { s.SeedCount = 0 }, "explicit seeds or seed_count"},
		"both seed forms":  {func(s *experiment.Spec) { s.Seeds = []int64{1} }, "not both"},
		"unknown network":  {func(s *experiment.Spec) { s.Network = "dialup" }, "unknown network model"},
		"negative round timeout": {func(s *experiment.Spec) {
			s.RoundTimeoutMS = -5
		}, "round_timeout_ms must be positive"},
		"negative trial timeout": {func(s *experiment.Spec) {
			s.TrialTimeoutMS = -1
		}, "trial_timeout_ms must be positive"},
		"trial timeout below round timeout": {func(s *experiment.Spec) {
			s.RoundTimeoutMS = 400
			s.TrialTimeoutMS = 300
		}, "must exceed the round timeout"},
		"bad schedule": {func(s *experiment.Spec) {
			s.FaultsTo = 0
			s.Schedule = "crash:99@1"
		}, "schedule"},
		"schedule plus sweep": {func(s *experiment.Spec) {
			s.Schedule = "crash:0@1"
			s.FaultsFrom = 1
			s.FaultsTo = 1
		}, "replaces the fault sweep"},
	}
	for name, tc := range cases {
		s := specExpand()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: spec validated but should be rejected", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
	// Kappa gate for the BA families.
	for _, fam := range []string{experiment.FamilyOneShot, experiment.FamilyHalf} {
		s := specExpand()
		s.Family = fam
		s.N, s.T = 4, 1
		s.Kappa = 0
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "kappa >= 1") {
			t.Errorf("%s with kappa=0: got %v, want kappa error", fam, err)
		}
	}
	// Half-tolerance family uses the 2t < n bound, not 3t < n.
	h := &experiment.Spec{
		Name: "h", Family: experiment.FamilyHalf,
		N: 5, T: 2, Kappa: 2, SeedCount: 1, SeedBase: 1,
	}
	if err := h.Validate(); err != nil {
		t.Errorf("half with n=5 t=2 should validate: %v", err)
	}
	h.T = 3
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "2t < n") {
		t.Errorf("half with n=5 t=3: got %v, want quorum error", err)
	}
	if err := specExpand().Validate(); err != nil {
		t.Fatalf("base spec must validate: %v", err)
	}
}

// TestParseSpecRejectsUnknownFields: a typo'd knob must fail loudly.
func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := experiment.ParseSpec(strings.NewReader(
		`{"name":"x","family":"expand","n":4,"t":1,"rounds":3,"seed_count":1,"round_timeoutms":500}`))
	if err == nil || !strings.Contains(err.Error(), "round_timeoutms") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
	s, err := experiment.ParseSpec(strings.NewReader(
		`{"name":"x","family":"expand","n":4,"t":1,"rounds":3,"faults_to":-1,"seed_count":2,"seed_base":5,"network":"lan"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Network != "lan" {
		t.Fatalf("parsed spec mangled: %+v", s)
	}
}

// TestTrialsGridDeterministic locks the grid contract: fault levels
// ascending, seeds in order, schedules identical across compilations,
// network model attached per trial seed.
func TestTrialsGridDeterministic(t *testing.T) {
	s := specExpand()
	s.Network = "lan"
	s.NetworkSeed = 11
	a, err := s.Trials()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Trials()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 { // faults 0..1 × 2 seeds
		t.Fatalf("grid has %d trials, want 4", len(a))
	}
	for i := range a {
		if a[i].Index != i {
			t.Errorf("trial %d has index %d", i, a[i].Index)
		}
		if a[i].Schedule.Spec() != b[i].Schedule.Spec() || a[i].Seed != b[i].Seed {
			t.Errorf("trial %d differs across compilations: %q vs %q", i, a[i].Schedule.Spec(), b[i].Schedule.Spec())
		}
		if nm := a[i].Schedule.NetModel(); nm == nil || nm.Name != "lan" {
			t.Errorf("trial %d missing lan model: %v", i, nm)
		}
		if got := len(a[i].Schedule.FaultyNodes()); got != a[i].Faults {
			t.Errorf("trial %d schedule has %d faulty nodes, want %d", i, got, a[i].Faults)
		}
	}
	if a[0].Faults != 0 || a[1].Faults != 0 || a[2].Faults != 1 || a[3].Faults != 1 {
		t.Errorf("fault levels not ascending: %v", []int{a[0].Faults, a[1].Faults, a[2].Faults, a[3].Faults})
	}
	if a[0].Seed != 1 || a[1].Seed != 2 {
		t.Errorf("seeds not in list order: %d, %d", a[0].Seed, a[1].Seed)
	}
	// An explicit schedule replaces the sweep.
	s2 := specExpand()
	s2.FaultsTo = 0
	s2.Schedule = "crash:3@2"
	trs, err := s2.Trials()
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 || trs[0].Faults != 1 || trs[0].Schedule.Spec() != "crash:3@2" {
		t.Fatalf("explicit-schedule grid wrong: %+v", trs)
	}
}

// TestRunSweepEndToEnd runs a tiny expand sweep over real sockets,
// twice, and demands identical per-trial outcomes and trace hashes —
// the reproducibility contract cmd/proxlab relies on.
func TestRunSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets + full sweep")
	}
	s := specExpand()
	s.Name = "e2e"
	s.Network = "lan"
	s.NetworkSeed = 3
	s.RoundTimeoutMS = 300
	run := func() []experiment.TrialResult {
		res, err := (&experiment.Runner{Spec: s, Logf: t.Logf}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	b := run()
	if len(a) != 4 {
		t.Fatalf("sweep produced %d results, want 4", len(a))
	}
	for i := range a {
		if a[i].Outcome != experiment.OutcomeDecided {
			t.Errorf("trial %d (faults=%d seed=%d): outcome %s (%s), want decided",
				i, a[i].Faults, a[i].Seed, a[i].Outcome, a[i].Detail)
		}
		if a[i].Outcome != b[i].Outcome || a[i].TraceHash != b[i].TraceHash {
			t.Errorf("trial %d not reproducible: %s/%s vs %s/%s",
				i, a[i].Outcome, a[i].TraceHash, b[i].Outcome, b[i].TraceHash)
		}
		if a[i].RoundsDone != s.Rounds {
			t.Errorf("trial %d completed %d rounds, want %d", i, a[i].RoundsDone, s.Rounds)
		}
		if a[i].Decided == 0 || a[i].Survivors == 0 {
			t.Errorf("trial %d recorded no deciders: %+v", i, a[i])
		}
	}
	curve, err := experiment.Curve(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 || curve[0].Faults != 0 || curve[1].Faults != 1 {
		t.Fatalf("curve levels wrong: %+v", curve)
	}
	for _, p := range curve {
		if p.Rate != 1 || p.Decided != 2 {
			t.Errorf("faults=%d: rate %.2f decided %d, want all decided", p.Faults, p.Rate, p.Decided)
		}
	}
}

// TestTrialWatchdogClassifiesTimeout pins the mandatory timeout wrap:
// a trial that cannot finish inside its budget classifies timed-out
// instead of wedging the sweep.
func TestTrialWatchdogClassifiesTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets")
	}
	s := specExpand()
	s.Name = "watchdog"
	s.FaultsTo = 0
	s.SeedCount = 1
	// One round would take ~300ms to even join; 10ms round / 20ms trial
	// budget cannot complete. The run is abandoned to its own deadlines.
	s.RoundTimeoutMS = 10
	s.TrialTimeoutMS = 20
	trs, err := s.Trials()
	if err != nil {
		t.Fatal(err)
	}
	res := (&experiment.Runner{Spec: s}).RunTrial(trs[0])
	if res.Outcome == experiment.OutcomeDecided {
		t.Fatalf("impossible budget decided: %+v", res)
	}
	if res.Outcome == experiment.OutcomeTimedOut && !strings.Contains(res.Detail, "no result within") {
		t.Errorf("timeout detail missing budget: %q", res.Detail)
	}
}

// TestCurvePartialOutput feeds the analysis mixed and malformed input:
// the curve must cover whatever parses and count every outcome class.
func TestCurvePartialOutput(t *testing.T) {
	results := []experiment.TrialResult{
		{Faults: 0, Outcome: experiment.OutcomeDecided, WallMS: 10},
		{Faults: 0, Outcome: experiment.OutcomeDecided, WallMS: 12},
		{Faults: 1, Outcome: experiment.OutcomeDecided, WallMS: 20},
		{Faults: 1, Outcome: experiment.OutcomeDegraded, WallMS: 30, Detail: "agreement: split"},
		{Faults: 2, Outcome: experiment.OutcomeTimedOut, WallMS: 500},
	}
	var buf bytes.Buffer
	if err := experiment.WriteJSONL(&buf, results); err != nil {
		t.Fatal(err)
	}
	// Corrupt the archive the way a killed sweep does: truncate the
	// last line and add noise.
	raw := buf.String()
	raw = raw[:len(raw)-10] + "\n{not json}\n\n"
	got, skipped, err := experiment.ReadJSONL(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || skipped != 2 {
		t.Fatalf("read %d results, skipped %d; want 4 and 2", len(got), skipped)
	}
	curve, err := experiment.Curve(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve has %d levels, want 2 (timed-out level lost to truncation)", len(curve))
	}
	p0, p1 := curve[0], curve[1]
	if p0.Faults != 0 || p0.Decided != 2 || p0.Rate != 1 {
		t.Errorf("level 0 wrong: %+v", p0)
	}
	if p1.Faults != 1 || p1.Decided != 1 || p1.Degraded != 1 || p1.Rate != 0.5 {
		t.Errorf("level 1 wrong: %+v", p1)
	}
	if p1.Lo >= p1.Rate || p1.Hi <= p1.Rate {
		t.Errorf("Wilson interval does not bracket the rate: %+v", p1)
	}
	var table bytes.Buffer
	if err := experiment.WriteCurve(&table, "unit", curve); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"faults", "decision rate", "0.50"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("curve table missing %q:\n%s", want, table.String())
		}
	}
}
