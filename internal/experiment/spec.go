// Package experiment turns robustness questions into declarative,
// replayable sweep grids: a Spec names a protocol family, an (n, t)
// frame, a fault-level sweep (exact faulty-node counts 0→t via
// chaos.GenerateFaulty, or one explicit schedule), a network latency
// model and a seed list, and compiles each grid cell down to the
// existing chaos/transport machinery. Every trial is wrapped in a
// mandatory timeout, every parameter is validated before any socket
// opens, and the analysis layer tolerates partial output: a trial is
// classified decided, degraded or timed-out instead of wedging the
// sweep. cmd/proxlab runs specs from JSON files and archives JSONL
// artifacts plus graceful-degradation curves.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"proxcensus/internal/ba"
	"proxcensus/internal/chaos"
	"proxcensus/internal/quorum"
	"proxcensus/internal/transport"
)

// Protocol families a spec can sweep.
const (
	// FamilyExpand is the standalone r-round expand Proxcensus
	// (t < n/3, graded output).
	FamilyExpand = "expand"
	// FamilyOneShot is the κ+1-round one-shot BA (t < n/3).
	FamilyOneShot = "oneshot"
	// FamilyHalf is the 3⌈κ/2⌉-round t < n/2 BA.
	FamilyHalf = "half"
)

// Families lists the runnable families in canonical order.
func Families() []string { return []string{FamilyExpand, FamilyOneShot, FamilyHalf} }

// Default knobs applied by Validate when a spec leaves them zero.
const (
	// DefaultRoundTimeout bounds one synchronous round on localhost.
	DefaultRoundTimeout = 500 * time.Millisecond
	// DefaultInput is the common honest input when the spec omits it.
	DefaultInput = 1
)

// Spec declares one experiment: a sweep grid of
// family × (n, t) × fault level × network model × seeds. The zero
// value of optional fields selects documented defaults; Validate
// rejects everything else before a single socket opens.
type Spec struct {
	// Name labels the experiment; artifacts are named after it.
	Name string `json:"name"`
	// Family selects the protocol: "expand", "oneshot" or "half".
	Family string `json:"family"`
	// N and T frame the execution; the family's quorum bound is
	// enforced (3t < n for expand/oneshot, 2t < n for half).
	N int `json:"n"`
	T int `json:"t"`
	// Kappa is the security parameter of the BA families (ignored by
	// expand). Must be >= 1 where used.
	Kappa int `json:"kappa,omitempty"`
	// Rounds is the expand round count (ignored by the BA families,
	// whose budgets derive from Kappa). Must be >= 1 where used.
	Rounds int `json:"rounds,omitempty"`
	// Input is the common honest input, 0 or 1. Defaults to 1 (so
	// validity is checkable: survivors must decide it).
	Input *int `json:"input,omitempty"`

	// FaultsFrom..FaultsTo sweeps exact faulty-node counts. FaultsTo
	// of -1 resolves to T; both default to 0. Each level generates
	// one schedule per seed via chaos.GenerateFaulty.
	FaultsFrom int `json:"faults_from,omitempty"`
	FaultsTo   int `json:"faults_to,omitempty"`
	// Schedule, when set, replaces the generated sweep entirely: the
	// grid becomes this one parsed schedule × seeds. Mutually
	// exclusive with a nonzero FaultsFrom/FaultsTo.
	Schedule string `json:"schedule,omitempty"`

	// Seeds lists explicit trial seeds; alternatively SeedCount seeds
	// starting at SeedBase (SeedBase, SeedBase+1, ...). Exactly one
	// of the two forms must be used.
	Seeds     []int64 `json:"seeds,omitempty"`
	SeedCount int     `json:"seed_count,omitempty"`
	SeedBase  int64   `json:"seed_base,omitempty"`

	// Network names a transport latency model ("lan", "wan", "sat");
	// empty runs without one. Each trial's model seed is NetworkSeed
	// mixed with the trial seed, so latency varies across trials but
	// replays exactly.
	Network     string `json:"network,omitempty"`
	NetworkSeed int64  `json:"network_seed,omitempty"`

	// RoundTimeoutMS bounds one synchronous round (default 500).
	RoundTimeoutMS int `json:"round_timeout_ms,omitempty"`
	// TrialTimeoutMS is the mandatory per-trial watchdog. Zero derives
	// (rounds+2) × 4 × round timeout, clamped to at least 10s.
	TrialTimeoutMS int `json:"trial_timeout_ms,omitempty"`

	// Screen toggles per-node ingress validation (default true).
	Screen *bool `json:"screen,omitempty"`
}

// ParseSpec decodes a JSON spec, rejecting unknown fields (a typo'd
// knob must fail pre-flight, not silently no-op) and validating.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("experiment: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ProtocolRounds returns the family's round budget for this spec.
func (s *Spec) ProtocolRounds() int {
	switch s.Family {
	case FamilyExpand:
		return s.Rounds
	case FamilyOneShot:
		return ba.OneShotRounds(s.Kappa)
	case FamilyHalf:
		return ba.HalfRounds(s.Kappa)
	default:
		return 0
	}
}

// InputValue returns the common honest input (default 1).
func (s *Spec) InputValue() int {
	if s.Input == nil {
		return DefaultInput
	}
	return *s.Input
}

// ScreenIngress reports whether trials validate their wire ingress.
func (s *Spec) ScreenIngress() bool { return s.Screen == nil || *s.Screen }

// RoundTimeout returns the per-round deadline.
func (s *Spec) RoundTimeout() time.Duration {
	if s.RoundTimeoutMS > 0 {
		return time.Duration(s.RoundTimeoutMS) * time.Millisecond
	}
	return DefaultRoundTimeout
}

// TrialTimeout returns the mandatory per-trial watchdog: the spec's
// explicit value, or a budget derived from the round count with a 10s
// floor. Timeout wrapping is not optional — a wedged trial must
// classify as timed-out, never hang the sweep.
func (s *Spec) TrialTimeout() time.Duration {
	if s.TrialTimeoutMS > 0 {
		return time.Duration(s.TrialTimeoutMS) * time.Millisecond
	}
	d := time.Duration(s.ProtocolRounds()+2) * 4 * s.RoundTimeout()
	if d < 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// faultsTo resolves the sweep's upper fault level (-1 → T).
func (s *Spec) faultsTo() int {
	if s.FaultsTo == -1 {
		return s.T
	}
	return s.FaultsTo
}

// SeedList materializes the trial seeds in grid order.
func (s *Spec) SeedList() []int64 {
	if len(s.Seeds) > 0 {
		return append([]int64(nil), s.Seeds...)
	}
	out := make([]int64, s.SeedCount)
	for i := range out {
		out[i] = s.SeedBase + int64(i)
	}
	return out
}

// Validate is the pre-flight check: every parameter the run would
// consume is verified before any socket opens, so a bad spec fails in
// microseconds with a pointed error instead of stalling mid-sweep.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("experiment: spec needs a name")
	}
	switch s.Family {
	case FamilyExpand:
		if s.Rounds < 1 {
			return fmt.Errorf("experiment: %s: expand needs rounds >= 1 (got %d)", s.Name, s.Rounds)
		}
	case FamilyOneShot, FamilyHalf:
		if s.Kappa < 1 {
			return fmt.Errorf("experiment: %s: %s needs kappa >= 1 (got %d)", s.Name, s.Family, s.Kappa)
		}
	default:
		return fmt.Errorf("experiment: %s: unknown family %q (know %v)", s.Name, s.Family, Families())
	}
	if s.N < 2 || s.T < 0 || s.T >= s.N {
		return fmt.Errorf("experiment: %s: invalid frame n=%d t=%d", s.Name, s.N, s.T)
	}
	switch s.Family {
	case FamilyHalf:
		if !quorum.TolerateHalf(s.N, s.T) {
			return fmt.Errorf("experiment: %s: %s requires 2t < n, got n=%d t=%d", s.Name, s.Family, s.N, s.T)
		}
	default:
		if !quorum.TolerateThird(s.N, s.T) {
			return fmt.Errorf("experiment: %s: %s requires 3t < n, got n=%d t=%d", s.Name, s.Family, s.N, s.T)
		}
	}
	if v := s.InputValue(); v != 0 && v != 1 {
		return fmt.Errorf("experiment: %s: input must be 0 or 1 (got %d)", s.Name, v)
	}
	if s.FaultsTo < -1 || s.FaultsFrom < 0 {
		return fmt.Errorf("experiment: %s: invalid fault sweep %d..%d", s.Name, s.FaultsFrom, s.FaultsTo)
	}
	to := s.faultsTo()
	if to < s.FaultsFrom {
		return fmt.Errorf("experiment: %s: empty fault sweep %d..%d", s.Name, s.FaultsFrom, to)
	}
	if to > s.T {
		return fmt.Errorf("experiment: %s: fault sweep up to %d exceeds budget t=%d", s.Name, to, s.T)
	}
	if s.Schedule != "" {
		if s.FaultsFrom != 0 || (s.FaultsTo != 0 && s.FaultsTo != -1) {
			return fmt.Errorf("experiment: %s: an explicit schedule replaces the fault sweep; drop faults_from/faults_to", s.Name)
		}
		if _, err := chaos.Parse(s.Schedule, s.N, s.T, s.ProtocolRounds()); err != nil {
			return fmt.Errorf("experiment: %s: schedule: %w", s.Name, err)
		}
	}
	switch {
	case len(s.Seeds) > 0 && s.SeedCount > 0:
		return fmt.Errorf("experiment: %s: use either seeds or seed_count, not both", s.Name)
	case len(s.Seeds) == 0 && s.SeedCount < 1:
		return fmt.Errorf("experiment: %s: need explicit seeds or seed_count >= 1", s.Name)
	}
	if s.Network != "" {
		if _, ok := transport.LookupNetModel(s.Network, 0); !ok {
			return fmt.Errorf("experiment: %s: unknown network model %q (know %v)", s.Name, s.Network, transport.NetModelNames())
		}
	}
	if s.RoundTimeoutMS < 0 {
		return fmt.Errorf("experiment: %s: round_timeout_ms must be positive (got %d)", s.Name, s.RoundTimeoutMS)
	}
	if s.TrialTimeoutMS < 0 {
		return fmt.Errorf("experiment: %s: trial_timeout_ms must be positive (got %d)", s.Name, s.TrialTimeoutMS)
	}
	if rt, tt := s.RoundTimeout(), s.TrialTimeout(); tt <= rt {
		return fmt.Errorf("experiment: %s: trial timeout %s must exceed the round timeout %s", s.Name, tt, rt)
	}
	return nil
}

// Trial is one grid cell: a fault level, a seed, and the concrete
// schedule the pair compiles to.
type Trial struct {
	// Index is the trial's position in grid order.
	Index int
	// Faults is the exact faulty-node count of the schedule.
	Faults int
	// Seed drove the schedule (and the trial's setup randomness).
	Seed int64
	// Schedule is the compiled fault schedule, network model attached.
	Schedule chaos.Schedule
}

// Trials compiles the spec's grid in deterministic order: fault levels
// ascending, seeds in list order. The same spec always yields the same
// trials — reproducibility is the whole point.
func (s *Spec) Trials() ([]Trial, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rounds := s.ProtocolRounds()
	seeds := s.SeedList()
	var out []Trial
	appendTrial := func(faults int, seed int64, sched chaos.Schedule) {
		if s.Network != "" {
			sched = sched.WithNetwork(s.Network, s.NetworkSeed^seed)
		}
		out = append(out, Trial{Index: len(out), Faults: faults, Seed: seed, Schedule: sched})
	}
	if s.Schedule != "" {
		sched, err := chaos.Parse(s.Schedule, s.N, s.T, rounds)
		if err != nil {
			return nil, err
		}
		for _, seed := range seeds {
			appendTrial(len(sched.FaultyNodes()), seed, sched)
		}
		return out, nil
	}
	for faults := s.FaultsFrom; faults <= s.faultsTo(); faults++ {
		for _, seed := range seeds {
			appendTrial(faults, seed, chaos.GenerateFaulty(s.N, s.T, rounds, seed, faults))
		}
	}
	return out, nil
}
