package experiment

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"proxcensus/internal/stats"
)

// CurvePoint is one x-position on a graceful-degradation curve: all
// trials at one fault level, collapsed to a decision rate with a
// Wilson interval and wall-clock quantiles.
type CurvePoint struct {
	// Faults is the exact faulty-node count (the curve's x axis).
	Faults int `json:"faults"`
	// Trials counts every classified trial at this level; Decided,
	// Degraded and TimedOut partition it.
	Trials   int `json:"trials"`
	Decided  int `json:"decided"`
	Degraded int `json:"degraded"`
	TimedOut int `json:"timed_out"`
	// Rate is Decided/Trials; Lo/Hi bound its 95% Wilson interval.
	Rate float64 `json:"rate"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	// P50MS/P99MS are wall-clock quantiles over the level's trials.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Curve collapses trial results into a degradation curve: one point
// per fault level, levels ascending. Partial input is fine — the
// curve covers whatever trials exist, including timed-out ones (they
// count against the decision rate; that is the point of mandatory
// timeout wrapping).
func Curve(results []TrialResult) ([]CurvePoint, error) {
	byLevel := make(map[int][]TrialResult)
	for _, tr := range results {
		byLevel[tr.Faults] = append(byLevel[tr.Faults], tr)
	}
	levels := make([]int, 0, len(byLevel))
	for f := range byLevel {
		levels = append(levels, f)
	}
	sort.Ints(levels)
	out := make([]CurvePoint, 0, len(levels))
	for _, f := range levels {
		trs := byLevel[f]
		p := CurvePoint{Faults: f, Trials: len(trs)}
		wall := make([]float64, 0, len(trs))
		for _, tr := range trs {
			switch tr.Outcome {
			case OutcomeDecided:
				p.Decided++
			case OutcomeTimedOut:
				p.TimedOut++
			default:
				p.Degraded++
			}
			wall = append(wall, tr.WallMS)
		}
		prop, err := stats.NewProportion(p.Decided, p.Trials)
		if err != nil {
			return nil, fmt.Errorf("experiment: curve at faults=%d: %w", f, err)
		}
		p.Rate, p.Lo, p.Hi = prop.P, prop.Lo, prop.Hi
		if p.P50MS, err = stats.Quantile(wall, 0.50); err != nil {
			return nil, fmt.Errorf("experiment: curve at faults=%d: %w", f, err)
		}
		if p.P99MS, err = stats.Quantile(wall, 0.99); err != nil {
			return nil, fmt.Errorf("experiment: curve at faults=%d: %w", f, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// WriteJSONL streams results as one JSON object per line — the
// archive format cmd/proxlab produces and ReadJSONL consumes.
func WriteJSONL(w io.Writer, results []TrialResult) error {
	enc := json.NewEncoder(w)
	for _, tr := range results {
		if err := enc.Encode(tr); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL loads a results archive, tolerating partial output: blank
// lines and lines that fail to parse (a truncated final line from a
// killed sweep, say) are skipped and counted, never fatal.
func ReadJSONL(r io.Reader) (results []TrialResult, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var tr TrialResult
		if json.Unmarshal(line, &tr) != nil || tr.Outcome == "" {
			skipped++
			continue
		}
		results = append(results, tr)
	}
	return results, skipped, sc.Err()
}

// WriteCurve renders a degradation curve as an aligned text table —
// the human-readable companion to the JSONL artifact.
func WriteCurve(w io.Writer, name string, curve []CurvePoint) error {
	if _, err := fmt.Fprintf(w, "# %s: decision rate and wall-clock as faults sweep\n", name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-7s %-7s %-8s %-9s %-9s %-18s %10s %10s\n",
		"faults", "trials", "decided", "degraded", "timedout", "rate [95% Wilson]", "p50(ms)", "p99(ms)"); err != nil {
		return err
	}
	for _, p := range curve {
		if _, err := fmt.Fprintf(w, "%-7d %-7d %-8d %-9d %-9d %.2f [%.2f, %.2f]  %10.1f %10.1f\n",
			p.Faults, p.Trials, p.Decided, p.Degraded, p.TimedOut, p.Rate, p.Lo, p.Hi, p.P50MS, p.P99MS); err != nil {
			return err
		}
	}
	return nil
}
