package experiment

import (
	"fmt"
	"time"

	"proxcensus/internal/ba"
	"proxcensus/internal/chaos"
	"proxcensus/internal/proxcensus"
	"proxcensus/internal/sim"
	"proxcensus/internal/transport"
	"proxcensus/internal/validate"
)

// Trial outcomes. Every trial lands in exactly one bucket: the sweep
// never aborts on a bad trial, it classifies and moves on.
const (
	// OutcomeDecided: the run finished, survivors agreed, and the
	// decision matches the common honest input.
	OutcomeDecided = "decided"
	// OutcomeDegraded: the run finished but a guarantee slipped —
	// a survivor errored, survivors disagreed, or validity broke.
	// Detail says which.
	OutcomeDegraded = "degraded"
	// OutcomeTimedOut: the mandatory trial watchdog fired before the
	// run produced any result.
	OutcomeTimedOut = "timed-out"
)

// TrialResult is one JSONL artifact line: everything needed to read a
// degradation curve or replay the trial (spec name + seed + schedule).
type TrialResult struct {
	Experiment string `json:"experiment"`
	Family     string `json:"family"`
	// Trial is the grid index, Faults/Seed the grid coordinates.
	Trial  int   `json:"trial"`
	Faults int   `json:"faults"`
	Seed   int64 `json:"seed"`
	// Schedule is the concrete fault schedule in grammar form.
	Schedule string `json:"schedule"`
	Outcome  string `json:"outcome"`
	Detail   string `json:"detail,omitempty"`
	// Survivors is the non-faulty node count; Decided how many of them
	// produced an output (under partial degradation the two differ).
	Survivors int `json:"survivors"`
	Decided   int `json:"decided"`
	// Rounds is the protocol budget, RoundsDone how many barriers the
	// hub completed before the trial ended (partial progress survives
	// a timeout classification on later analysis of earlier trials).
	Rounds     int     `json:"rounds"`
	RoundsDone int     `json:"rounds_done"`
	WallMS     float64 `json:"wall_ms"`
	// TraceHash is the deterministic replay digest (empty on timeout).
	TraceHash string `json:"trace_hash,omitempty"`
	// Transport and Ingress carry the one-line hub and screening
	// summaries for post-mortems.
	Transport string `json:"transport,omitempty"`
	Ingress   string `json:"ingress,omitempty"`
}

// Runner executes a spec's trial grid sequentially and deterministically.
type Runner struct {
	Spec *Spec
	// Sink, when set, receives each TrialResult the moment it is
	// classified — cmd/proxlab streams JSONL through it so an
	// interrupted sweep still leaves a usable partial artifact.
	Sink func(TrialResult)
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Run validates the spec, compiles the grid and executes every trial.
// The error covers grid compilation only; trial-level trouble is
// classified into the results, never returned.
func (r *Runner) Run() ([]TrialResult, error) {
	trials, err := r.Spec.Trials()
	if err != nil {
		return nil, err
	}
	out := make([]TrialResult, 0, len(trials))
	for _, tr := range trials {
		res := r.RunTrial(tr)
		if r.Logf != nil {
			r.Logf("trial %d/%d faults=%d seed=%d: %s (%.0fms)%s",
				tr.Index+1, len(trials), tr.Faults, tr.Seed, res.Outcome, res.WallMS, detailSuffix(res.Detail))
		}
		if r.Sink != nil {
			r.Sink(res)
		}
		out = append(out, res)
	}
	return out, nil
}

func detailSuffix(detail string) string {
	if detail == "" {
		return ""
	}
	return ": " + detail
}

// RunTrial executes one grid cell under the mandatory watchdog. It
// never blocks longer than the spec's trial timeout: a wedged run is
// abandoned to its own transport deadlines and classified timed-out.
func (r *Runner) RunTrial(tr Trial) TrialResult {
	s := r.Spec
	out := TrialResult{
		Experiment: s.Name,
		Family:     s.Family,
		Trial:      tr.Index,
		Faults:     tr.Faults,
		Seed:       tr.Seed,
		Schedule:   tr.Schedule.Spec(),
		Rounds:     s.ProtocolRounds(),
	}
	machines, cfg, err := r.build(tr)
	if err != nil {
		out.Outcome = OutcomeDegraded
		out.Detail = fmt.Sprintf("setup: %v", err)
		return out
	}
	start := time.Now() //lint:wallclock trial wall-clock measurement only, not protocol state
	type runOut struct {
		res *chaos.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := chaos.Run(machines, tr.Schedule, cfg)
		done <- runOut{res, err}
	}()
	watchdog := time.NewTimer(s.TrialTimeout()) //lint:wallclock mandatory per-trial watchdog; bounds the sweep, not the protocol
	defer watchdog.Stop()
	select {
	case <-watchdog.C:
		// The run goroutine is abandoned; its sockets die under their
		// own transport deadlines. The artifact records the timeout so
		// analysis can count the trial against the decision rate.
		out.Outcome = OutcomeTimedOut
		out.Detail = fmt.Sprintf("no result within %s", s.TrialTimeout())
		out.WallMS = wallMS(start)
		return out
	case ro := <-done:
		out.WallMS = wallMS(start)
		r.classify(&out, ro.res, ro.err)
		return out
	}
}

func wallMS(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond) //lint:wallclock trial wall-clock measurement only, not protocol state
}

// classify fills the outcome fields from a finished run. Partial
// output is the norm under faults: whatever the run produced is
// recorded even when the outcome is degraded.
func (r *Runner) classify(out *TrialResult, res *chaos.Result, err error) {
	if res != nil {
		out.Survivors = len(res.Survivors())
		out.RoundsDone = len(res.Hub.RoundLatency)
		out.TraceHash = res.TraceHash()
		out.Transport = res.Hub.Summary()
		for _, id := range res.Survivors() {
			if res.Errs[id] == nil && res.Outputs[id] != nil {
				out.Decided++
			}
		}
		if v := res.Validation(); v.Admitted > 0 || v.TotalRejected() > 0 {
			out.Ingress = v.Summary()
		}
	}
	switch {
	case err != nil:
		out.Outcome = OutcomeDegraded
		out.Detail = fmt.Sprintf("run: %v", err)
	case res == nil:
		out.Outcome = OutcomeDegraded
		out.Detail = "run returned no result"
	default:
		if aerr := res.CheckAgreement(); aerr != nil {
			out.Outcome = OutcomeDegraded
			out.Detail = fmt.Sprintf("agreement: %v", aerr)
			return
		}
		if verr := r.checkValidity(res); verr != nil {
			out.Outcome = OutcomeDegraded
			out.Detail = fmt.Sprintf("validity: %v", verr)
			return
		}
		out.Outcome = OutcomeDecided
	}
}

// checkValidity demands every survivor decided the common honest
// input — with unanimous honest inputs, anything else is degradation.
func (r *Runner) checkValidity(res *chaos.Result) error {
	want := r.Spec.InputValue()
	for _, id := range res.Survivors() {
		var got int
		switch v := res.Outputs[id].(type) {
		case proxcensus.Result:
			got = v.Value
		case proxcensus.Value: // covers ba.Value (alias)
			got = v
		default:
			return fmt.Errorf("node %d: unexpected output type %T", id, res.Outputs[id])
		}
		if got != want {
			return fmt.Errorf("node %d decided %d, want common input %d", id, got, want)
		}
	}
	return nil
}

// build compiles the trial's machines, ingress screen and transport
// config. BA setups are seeded per trial, so the whole trial — dealer
// randomness included — replays from (spec, seed).
func (r *Runner) build(tr Trial) ([]sim.Machine, transport.Config, error) {
	s := r.Spec
	rt := s.RoundTimeout()
	cfg := transport.Config{
		RoundTimeout: rt,
		JoinTimeout:  4 * rt,
		DialTimeout:  2 * rt,
	}
	switch s.Family {
	case FamilyExpand:
		machines := make([]sim.Machine, s.N)
		for i := range machines {
			machines[i] = proxcensus.NewExpandMachine(s.N, s.T, s.Rounds, s.InputValue())
		}
		if s.ScreenIngress() {
			n, rounds := s.N, s.Rounds
			cfg.NewIngress = func(int) *validate.Validator {
				return validate.New(validate.ForExpand(n, rounds, 1))
			}
		}
		return machines, cfg, nil
	case FamilyOneShot, FamilyHalf:
		setup, err := ba.NewSetup(s.N, s.T, ba.CoinThreshold, tr.Seed)
		if err != nil {
			return nil, cfg, err
		}
		inputs := make([]ba.Value, s.N)
		for i := range inputs {
			inputs[i] = s.InputValue()
		}
		var p *ba.Protocol
		if s.Family == FamilyOneShot {
			p, err = ba.NewOneShot(setup, s.Kappa, inputs)
		} else {
			p, err = ba.NewHalf(setup, s.Kappa, inputs)
		}
		if err != nil {
			return nil, cfg, err
		}
		if s.ScreenIngress() {
			n, kappa, fam := s.N, s.Kappa, s.Family
			coinPK, proxPK := setup.CoinPK, setup.ProxPK
			cfg.NewIngress = func(int) *validate.Validator {
				if fam == FamilyOneShot {
					return validate.New(validate.ForOneShot(n, kappa, 1, coinPK))
				}
				return validate.New(validate.ForHalf(n, coinPK, proxPK))
			}
		}
		return p.Machines, cfg, nil
	default:
		return nil, cfg, fmt.Errorf("experiment: unknown family %q", s.Family)
	}
}
