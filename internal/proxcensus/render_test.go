package proxcensus

import (
	"strings"
	"testing"
)

func TestRenderSlotLineSmall(t *testing.T) {
	out, err := RenderSlotLine(5, []Result{
		{Value: 0, Grade: 1}, {Value: 0, Grade: 1}, {Value: 0, Grade: 1},
		{Value: 1, Grade: 0}, {Value: 0, Grade: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(0,2)", "(0,1)", "(-,0)", "(1,1)", "(1,2)", "3", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Slot (1,1) and the extremes are empty.
	if strings.Count(out, ".") < 3 {
		t.Errorf("expected three empty slots:\n%s", out)
	}
}

func TestRenderSlotLineEven(t *testing.T) {
	out, err := RenderSlotLine(4, []Result{{Value: 0, Grade: 0}, {Value: 1, Grade: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(0,1)", "(0,0)", "(1,0)", "(1,1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSlotLineWideElides(t *testing.T) {
	// s = 2^10+1: only the occupied neighbourhood is drawn.
	s := 1025
	out, err := RenderSlotLine(s, []Result{
		{Value: 1, Grade: 100}, {Value: 1, Grade: 101},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "...") {
		t.Errorf("wide line should elide:\n%s", out)
	}
	if !strings.Contains(out, "(1,100)") || !strings.Contains(out, "(1,101)") {
		t.Errorf("occupied slots missing:\n%s", out)
	}
	if len(out) > 400 {
		t.Errorf("render too wide (%d chars) for sparse occupancy", len(out))
	}
}

func TestRenderSlotLineErrors(t *testing.T) {
	if _, err := RenderSlotLine(5, []Result{{Value: 7, Grade: 1}}); err == nil {
		t.Error("non-binary value must error")
	}
	if _, err := RenderSlotLine(5, []Result{{Value: 0, Grade: 9}}); err == nil {
		t.Error("out-of-range grade must error")
	}
	if out, err := RenderSlotLine(3, nil); err != nil || out == "" {
		t.Errorf("empty results should render an empty line: %v", err)
	}
}
