package proxcensus_test

import (
	"fmt"
	"math/rand"
	"testing"

	"proxcensus/internal/adversary"
	"proxcensus/internal/crypto/threshsig"
	"proxcensus/internal/proxcensus"
	"proxcensus/internal/sim"
)

func dealHalfScheme(t *testing.T, n, tc int) (*threshsig.PublicKey, []*threshsig.SecretKey) {
	t.Helper()
	var seed [threshsig.Size]byte
	seed[0] = 0x22
	pk, sks, err := threshsig.Deal(n, n-tc, seed)
	if err != nil {
		t.Fatal(err)
	}
	return pk, sks
}

// runLinear executes Prox_{2r-1} and returns honest results by party.
func runLinear(t *testing.T, n, tc, rounds int, inputs []int, adv sim.Adversary, seed int64) map[int]proxcensus.Result {
	t.Helper()
	pk, sks := dealHalfScheme(t, n, tc)
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		machines[i] = proxcensus.NewLinearMachine(n, tc, rounds, inputs[i], pk, sks[i])
	}
	res, err := sim.Run(sim.Config{N: n, T: tc, Rounds: rounds, Seed: seed}, machines, adv)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make(map[int]proxcensus.Result, len(res.Outputs))
	for p, o := range res.Outputs {
		out[p] = o.(proxcensus.Result)
	}
	return out
}

// runQuad executes Prox_{3+(r-3)(r-2)} and returns honest results.
func runQuad(t *testing.T, n, tc, rounds int, inputs []int, adv sim.Adversary, seed int64) map[int]proxcensus.Result {
	t.Helper()
	pk, sks := dealHalfScheme(t, n, tc)
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		machines[i] = proxcensus.NewQuadMachine(n, tc, rounds, inputs[i], pk, sks[i])
	}
	res, err := sim.Run(sim.Config{N: n, T: tc, Rounds: rounds, Seed: seed}, machines, adv)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make(map[int]proxcensus.Result, len(res.Outputs))
	for p, o := range res.Outputs {
		out[p] = o.(proxcensus.Result)
	}
	return out
}

func TestLinearMachineValidity(t *testing.T) {
	cases := []struct{ n, tc, r int }{
		{3, 1, 2}, {3, 1, 3}, {5, 2, 3}, {7, 3, 4}, {9, 4, 5}, {4, 1, 3},
	}
	for _, c := range cases {
		for _, v := range []int{0, 1, 42} {
			t.Run(fmt.Sprintf("n=%d/t=%d/r=%d/v=%d", c.n, c.tc, c.r, v), func(t *testing.T) {
				inputs := make([]int, c.n)
				for i := range inputs {
					inputs[i] = v
				}
				s := proxcensus.LinearSlots(c.r)
				advs := []sim.Adversary{
					sim.Passive{},
					&adversary.Crash{Victims: adversary.FirstT(c.tc)},
					&adversary.LateCrash{Victims: adversary.FirstT(c.tc), When: 2},
				}
				for _, adv := range advs {
					got := runLinear(t, c.n, c.tc, c.r, inputs, adv, 3)
					if err := proxcensus.CheckValidity(s, v, resultsOf(got)); err != nil {
						t.Errorf("adversary %s: %v", adv.Name(), err)
					}
				}
			})
		}
	}
}

func TestLinearKeepSplitStraddle(t *testing.T) {
	cases := []struct{ n, tc, r int }{
		{3, 1, 3}, {5, 2, 3}, {7, 3, 3}, {5, 2, 4}, {5, 2, 5}, {9, 4, 3},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n=%d/t=%d/r=%d", c.n, c.tc, c.r), func(t *testing.T) {
			_, sks := dealHalfScheme(t, c.n, c.tc)
			adv := &adversary.LinearKeepSplit{N: c.n, T: c.tc, Keys: sks[:c.tc]}
			inputs := adversary.LinearSplitInputs(c.n, c.tc)
			got := runLinear(t, c.n, c.tc, c.r, inputs, adv, 9)
			s := proxcensus.LinearSlots(c.r)
			if err := proxcensus.CheckConsistency(s, resultsOf(got)); err != nil {
				t.Fatal(err)
			}
			leader := adv.Leader()
			if want := (proxcensus.Result{Value: 0, Grade: c.r - 1}); got[leader] != want {
				t.Errorf("leader output %v, want %v", got[leader], want)
			}
			for p, r := range got {
				if p == leader {
					continue
				}
				if want := (proxcensus.Result{Value: 0, Grade: c.r - 2}); r != want {
					t.Errorf("party %d output %v, want %v", p, r, want)
				}
			}
		})
	}
}

// linearGarbageGen floods protocol-typed payloads built with corrupted
// keys plus outright garbage.
func linearGarbageGen(sks []*threshsig.SecretKey) adversary.PayloadGen {
	return func(rng *rand.Rand, round int, from, to sim.PartyID) sim.Payload {
		sk := sks[from]
		v := rng.Intn(2)
		switch rng.Intn(5) {
		case 0:
			return proxcensus.LinearVote{V: v, Share: threshsig.SignShare(sk, proxcensus.LinearSigmaMessage(v))}
		case 1:
			return proxcensus.LinearOmegaShare{V: v, Share: threshsig.SignShare(sk, proxcensus.LinearOmegaMessage(v))}
		case 2:
			var junk threshsig.Signature
			junk[0] = byte(rng.Intn(256))
			return proxcensus.LinearSigma{V: v, Sig: junk}
		case 3:
			// Share claimed for the wrong value.
			return proxcensus.LinearVote{V: 1 - v, Share: threshsig.SignShare(sk, proxcensus.LinearSigmaMessage(v))}
		default:
			return nil
		}
	}
}

func TestLinearMachineConsistencyUnderAttack(t *testing.T) {
	const trials = 25
	cases := []struct{ n, tc, r int }{
		{3, 1, 2}, {3, 1, 3}, {5, 2, 3}, {5, 2, 4}, {7, 3, 3}, {7, 3, 5},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n=%d/t=%d/r=%d", c.n, c.tc, c.r), func(t *testing.T) {
			_, sks := dealHalfScheme(t, c.n, c.tc)
			s := proxcensus.LinearSlots(c.r)
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)))
				inputs := make([]int, c.n)
				for i := range inputs {
					inputs[i] = rng.Intn(2)
				}
				adv := &adversary.Random{Victims: adversary.FirstT(c.tc), Gen: linearGarbageGen(sks)}
				got := runLinear(t, c.n, c.tc, c.r, inputs, adv, int64(trial*13+1))
				honest := resultsOf(got)
				if err := proxcensus.CheckConsistency(s, honest); err != nil {
					t.Fatalf("trial %d inputs %v: %v", trial, inputs, err)
				}
				if err := proxcensus.CheckAdjacent(s, honest); err != nil {
					t.Fatalf("trial %d inputs %v: %v", trial, inputs, err)
				}
			}
		})
	}
}

func TestQuadMachineValidity(t *testing.T) {
	cases := []struct{ n, tc, r int }{
		{3, 1, 3}, {5, 2, 4}, {7, 3, 5}, {5, 2, 6}, {9, 4, 4},
	}
	for _, c := range cases {
		for _, v := range []int{0, 1, 9} {
			t.Run(fmt.Sprintf("n=%d/t=%d/r=%d/v=%d", c.n, c.tc, c.r, v), func(t *testing.T) {
				inputs := make([]int, c.n)
				for i := range inputs {
					inputs[i] = v
				}
				s := proxcensus.QuadSlots(c.r)
				advs := []sim.Adversary{
					sim.Passive{},
					&adversary.Crash{Victims: adversary.FirstT(c.tc)},
				}
				for _, adv := range advs {
					got := runQuad(t, c.n, c.tc, c.r, inputs, adv, 3)
					if err := proxcensus.CheckValidity(s, v, resultsOf(got)); err != nil {
						t.Errorf("adversary %s: %v", adv.Name(), err)
					}
				}
			})
		}
	}
}

func TestQuadKeepSplitStraddle(t *testing.T) {
	cases := []struct{ n, tc, r int }{
		{3, 1, 3}, {5, 2, 4}, {5, 2, 5}, {7, 3, 6}, {9, 4, 5},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n=%d/t=%d/r=%d", c.n, c.tc, c.r), func(t *testing.T) {
			_, sks := dealHalfScheme(t, c.n, c.tc)
			adv := &adversary.QuadKeepSplit{N: c.n, T: c.tc, Keys: sks[:c.tc]}
			inputs := adversary.LinearSplitInputs(c.n, c.tc)
			got := runQuad(t, c.n, c.tc, c.r, inputs, adv, 9)
			s := proxcensus.QuadSlots(c.r)
			if err := proxcensus.CheckConsistency(s, resultsOf(got)); err != nil {
				t.Fatal(err)
			}
			leader := adv.Leader()
			g := proxcensus.QuadMaxGrade(c.r)
			if want := (proxcensus.Result{Value: 0, Grade: g}); got[leader] != want {
				t.Errorf("leader output %v, want %v", got[leader], want)
			}
			for p, r := range got {
				if p == leader {
					continue
				}
				if want := (proxcensus.Result{Value: 0, Grade: g - 1}); r != want {
					t.Errorf("party %d output %v, want %v", p, r, want)
				}
			}
		})
	}
}

// quadGarbageGen floods quad-typed payloads built with corrupted keys.
func quadGarbageGen(rounds int, sks []*threshsig.SecretKey) adversary.PayloadGen {
	return func(rng *rand.Rand, round int, from, to sim.PartyID) sim.Payload {
		sk := sks[from]
		v := rng.Intn(2)
		j := rng.Intn(rounds) + 1
		switch rng.Intn(5) {
		case 0:
			return proxcensus.QuadVote{V: v, Share: threshsig.SignShare(sk, proxcensus.QuadMessage(v, 1))}
		case 1:
			return proxcensus.QuadOmegaShare{V: v, J: j, Share: threshsig.SignShare(sk, proxcensus.QuadMessage(v, j))}
		case 2:
			var junk threshsig.Signature
			junk[0] = byte(rng.Intn(256))
			return proxcensus.QuadSig{V: v, J: j, Sig: junk}
		case 3:
			// Omega share with mismatched level claim.
			return proxcensus.QuadOmegaShare{V: v, J: j, Share: threshsig.SignShare(sk, proxcensus.QuadMessage(v, j+1))}
		default:
			return nil
		}
	}
}

func TestQuadMachineConsistencyUnderAttack(t *testing.T) {
	const trials = 20
	cases := []struct{ n, tc, r int }{
		{3, 1, 3}, {3, 1, 4}, {5, 2, 4}, {5, 2, 5}, {7, 3, 6},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n=%d/t=%d/r=%d", c.n, c.tc, c.r), func(t *testing.T) {
			_, sks := dealHalfScheme(t, c.n, c.tc)
			s := proxcensus.QuadSlots(c.r)
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)))
				inputs := make([]int, c.n)
				for i := range inputs {
					inputs[i] = rng.Intn(2)
				}
				adv := &adversary.Random{Victims: adversary.FirstT(c.tc), Gen: quadGarbageGen(c.r, sks)}
				got := runQuad(t, c.n, c.tc, c.r, inputs, adv, int64(trial*17+5))
				honest := resultsOf(got)
				if err := proxcensus.CheckConsistency(s, honest); err != nil {
					t.Fatalf("trial %d inputs %v: %v", trial, inputs, err)
				}
			}
		})
	}
}

func TestExpandKeepSplitStraddle(t *testing.T) {
	cases := []struct{ n, tc, r int }{
		{4, 1, 1}, {4, 1, 3}, {7, 2, 4}, {10, 3, 5}, {13, 4, 3},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n=%d/t=%d/r=%d", c.n, c.tc, c.r), func(t *testing.T) {
			adv := &adversary.ExpandKeepSplit{N: c.n, T: c.tc}
			inputs := adversary.ExpandSplitInputs(c.n, c.tc)
			got := runExpand(t, c.n, c.tc, c.r, inputs, adv, 4)
			s := proxcensus.ExpandSlots(c.r)
			honest := resultsOf(got)
			if err := proxcensus.CheckConsistency(s, honest); err != nil {
				t.Fatal(err)
			}
			boosted := map[int]bool{}
			for i := 0; i < adv.BoostCount(); i++ {
				boosted[c.tc+i] = true
			}
			for p, r := range got {
				want := proxcensus.Result{Value: 0, Grade: 0}
				if boosted[p] {
					want = proxcensus.Result{Value: 0, Grade: 1}
				}
				if r != want {
					t.Errorf("party %d output %v, want %v", p, r, want)
				}
			}
		})
	}
}
