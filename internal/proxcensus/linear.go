package proxcensus

import (
	"encoding/binary"
	"fmt"
	"sort"

	"proxcensus/internal/crypto/threshsig"
	"proxcensus/internal/sim"
)

// The linear t < n/2 protocol Prox_{2r-1} (Section 3.3, Lemma 3) runs r
// rounds using a unique (n-t)-out-of-n threshold signature scheme:
//
//	round 1:  sign-share the input v; n-t matching shares combine into
//	          the value's threshold signature Σ_v.
//	round 2:  forward Σ_v; a party whose round-1 signature set was the
//	          singleton {Σ_v} also shares an "omega" signature on v —
//	          n-t omega shares combine into the proof Ω_v that an honest
//	          party saw only v after round 1.
//	round 3+: forward newly formed or received Σ and Ω signatures.
//
// A party outputs (y, g), g >= 1, iff it saw Σ_y by round r-g, saw the
// proof Ω_y by round r-g+1, and saw no Σ on any other value by round
// g+1 (Table 1 shows the r=3 instance, Prox_5).

// LinearVote is the round-1 payload: the sender's input and its
// signature share on it.
type LinearVote struct {
	V     Value
	Share threshsig.Share
}

var _ sim.Payload = LinearVote{}

// SigCount implements sim.Payload.
func (LinearVote) SigCount() int { return 1 }

// ByteSize implements sim.Payload.
func (LinearVote) ByteSize() int { return 8 + 8 + threshsig.Size }

// LinearOmegaShare is the round-2 payload attesting that the sender's
// round-1 signature set was exactly {Σ_V}.
type LinearOmegaShare struct {
	V     Value
	Share threshsig.Share
}

var _ sim.Payload = LinearOmegaShare{}

// SigCount implements sim.Payload.
func (LinearOmegaShare) SigCount() int { return 1 }

// ByteSize implements sim.Payload.
func (LinearOmegaShare) ByteSize() int { return 8 + 8 + threshsig.Size }

// LinearSigma forwards a combined threshold signature Σ on a value.
type LinearSigma struct {
	V   Value
	Sig threshsig.Signature
}

var _ sim.Payload = LinearSigma{}

// SigCount implements sim.Payload.
func (LinearSigma) SigCount() int { return 1 }

// ByteSize implements sim.Payload.
func (LinearSigma) ByteSize() int { return 8 + threshsig.Size }

// LinearOmega forwards a combined proof Ω on a value.
type LinearOmega struct {
	V   Value
	Sig threshsig.Signature
}

var _ sim.Payload = LinearOmega{}

// SigCount implements sim.Payload.
func (LinearOmega) SigCount() int { return 1 }

// ByteSize implements sim.Payload.
func (LinearOmega) ByteSize() int { return 8 + threshsig.Size }

// LinearSigmaCert is the PKI wire format for a proven value: instead of
// one combined threshold signature it carries the n-t individual shares
// — the paper's remark that a PKI-only implementation costs a factor of
// n in communication (Section 3.3). Used by the MV-style baseline to
// model its O(κn³) traffic.
type LinearSigmaCert struct {
	V      Value
	Shares []threshsig.Share
}

var _ sim.Payload = LinearSigmaCert{}

// SigCount implements sim.Payload: one signature object per share.
func (c LinearSigmaCert) SigCount() int { return len(c.Shares) }

// ByteSize implements sim.Payload.
func (c LinearSigmaCert) ByteSize() int { return 8 + len(c.Shares)*(8+threshsig.Size) }

// LinearOmegaCert is the PKI wire format for the proof Ω.
type LinearOmegaCert struct {
	V      Value
	Shares []threshsig.Share
}

var _ sim.Payload = LinearOmegaCert{}

// SigCount implements sim.Payload.
func (c LinearOmegaCert) SigCount() int { return len(c.Shares) }

// ByteSize implements sim.Payload.
func (c LinearOmegaCert) ByteSize() int { return 8 + len(c.Shares)*(8+threshsig.Size) }

// LinearSigmaMessage is the byte string sign-shared for Σ_v. Exported so
// adversary strategies can craft protocol-valid traffic with corrupted
// keys.
func LinearSigmaMessage(v Value) []byte { return tagValue("prox-linear/sigma/", v) }

// LinearOmegaMessage is the byte string sign-shared for Ω_v.
func LinearOmegaMessage(v Value) []byte { return tagValue("prox-linear/omega/", v) }

// tagValue concatenates a domain tag and a value encoding.
func tagValue(tag string, v Value) []byte {
	buf := make([]byte, 0, len(tag)+8)
	buf = append(buf, tag...)
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], uint64(int64(v)))
	return append(buf, enc[:]...)
}

// LinearSlots returns the slot count 2r-1 achieved in r rounds.
func LinearSlots(rounds int) int { return 2*rounds - 1 }

// LinearMachine is one party's Prox_{2r-1} state machine.
type LinearMachine struct {
	n, t, rounds int
	input        Value
	pk           *threshsig.PublicKey
	sk           *threshsig.SecretKey
	round        int

	voteShares  map[Value]map[int]threshsig.Share // sigma shares by value, signer
	omegaShares map[Value]map[int]threshsig.Share
	sigma       map[Value]threshsig.Signature
	sigmaRound  map[Value]int // round Σ_v was first formed or received
	omega       map[Value]threshsig.Signature
	omegaRound  map[Value]int

	// explicitCerts switches the wire format to PKI style: proofs travel
	// as explicit share sets instead of combined signatures (factor-n
	// communication blowup, Section 3.3).
	explicitCerts bool
	sigmaCert     map[Value][]threshsig.Share
	omegaCert     map[Value][]threshsig.Share

	out Result
}

var _ sim.Machine = (*LinearMachine)(nil)

// NewLinearMachine builds one party's machine for the r-round linear
// Proxcensus. The scheme must have threshold n-t. rounds >= 2.
func NewLinearMachine(n, t, rounds int, input Value, pk *threshsig.PublicKey, sk *threshsig.SecretKey) *LinearMachine {
	return &LinearMachine{
		n:           n,
		t:           t,
		rounds:      rounds,
		input:       input,
		pk:          pk,
		sk:          sk,
		voteShares:  make(map[Value]map[int]threshsig.Share),
		omegaShares: make(map[Value]map[int]threshsig.Share),
		sigma:       make(map[Value]threshsig.Signature),
		sigmaRound:  make(map[Value]int),
		omega:       make(map[Value]threshsig.Signature),
		omegaRound:  make(map[Value]int),
	}
}

// Rounds returns the protocol's round budget.
func (m *LinearMachine) Rounds() int { return m.rounds }

// Slots returns the slot count of the output, 2r-1.
func (m *LinearMachine) Slots() int { return LinearSlots(m.rounds) }

// UseExplicitCertificates switches this machine to the PKI wire format:
// instead of combined threshold signatures it forwards explicit share
// sets, multiplying communication by Θ(n). The protocol logic is
// unchanged — this models implementations without a threshold scheme
// (the paper's Section 3.3 remark, and how the MV baseline reaches
// O(κn³) traffic). Returns the machine for chaining.
func (m *LinearMachine) UseExplicitCertificates() *LinearMachine {
	m.explicitCerts = true
	m.sigmaCert = make(map[Value][]threshsig.Share)
	m.omegaCert = make(map[Value][]threshsig.Share)
	return m
}

// Start implements sim.Machine.
func (m *LinearMachine) Start() []sim.Send {
	return sim.BroadcastSend(LinearVote{
		V:     m.input,
		Share: threshsig.SignShare(m.sk, LinearSigmaMessage(m.input)),
	})
}

// Deliver implements sim.Machine.
func (m *LinearMachine) Deliver(round int, in []sim.Message) []sim.Send {
	if round > m.rounds {
		return nil
	}
	m.round = round
	newSigma, newOmega := m.absorb(round, in)
	if round == m.rounds {
		m.out = m.determineOutput()
		return nil
	}

	sends := make([]sim.Send, 0, len(newSigma)+len(newOmega)+1)
	for _, v := range newSigma {
		if m.explicitCerts {
			sends = append(sends, sim.Send{To: sim.Broadcast, Payload: LinearSigmaCert{V: v, Shares: m.sigmaCert[v]}})
			continue
		}
		sends = append(sends, sim.Send{To: sim.Broadcast, Payload: LinearSigma{V: v, Sig: m.sigma[v]}})
	}
	for _, v := range newOmega {
		if m.explicitCerts {
			sends = append(sends, sim.Send{To: sim.Broadcast, Payload: LinearOmegaCert{V: v, Shares: m.omegaCert[v]}})
			continue
		}
		sends = append(sends, sim.Send{To: sim.Broadcast, Payload: LinearOmega{V: v, Sig: m.omega[v]}})
	}
	if round == 1 && len(m.sigma) == 1 {
		// S^1 is the singleton {(v, Σ)}: attest it with an omega share.
		//lint:ordered the map has exactly one key
		for v := range m.sigma {
			sends = append(sends, sim.Send{To: sim.Broadcast, Payload: LinearOmegaShare{
				V:     v,
				Share: threshsig.SignShare(m.sk, LinearOmegaMessage(v)),
			}})
		}
	}
	return sends
}

// Output implements sim.Machine.
func (m *LinearMachine) Output() (any, bool) {
	if m.round < m.rounds {
		return nil, false
	}
	return m.out, true
}

// OmegaProof returns the held combined proof Ω for value v. A party
// that output grade >= 1 for v necessarily holds it; the Turpin-Coan
// prefix for t < n/2 forwards it as a transferable certificate.
func (m *LinearMachine) OmegaProof(v Value) (threshsig.Signature, error) {
	sig, ok := m.omega[v]
	if !ok {
		return threshsig.Signature{}, fmt.Errorf("proxcensus: no omega proof held for value %d", v)
	}
	return sig, nil
}

// absorb ingests one round's traffic; it returns the values whose Σ
// (resp. Ω) became known this round, for forwarding.
func (m *LinearMachine) absorb(round int, in []sim.Message) (newSigma, newOmega []Value) {
	for _, msg := range in {
		switch p := msg.Payload.(type) {
		case LinearVote:
			// Authenticated channel: a sender may only contribute its
			// own share.
			if p.Share.Signer != msg.From {
				continue
			}
			if !threshsig.VerShare(m.pk, LinearSigmaMessage(p.V), p.Share) {
				continue
			}
			addShare(m.voteShares, p.V, p.Share)
		case LinearOmegaShare:
			if p.Share.Signer != msg.From {
				continue
			}
			if !threshsig.VerShare(m.pk, LinearOmegaMessage(p.V), p.Share) {
				continue
			}
			addShare(m.omegaShares, p.V, p.Share)
		case LinearSigma:
			if _, known := m.sigma[p.V]; known {
				continue
			}
			if !threshsig.Ver(m.pk, LinearSigmaMessage(p.V), p.Sig) {
				continue
			}
			m.sigma[p.V] = p.Sig
			m.sigmaRound[p.V] = round
			newSigma = append(newSigma, p.V)
		case LinearOmega:
			if _, known := m.omega[p.V]; known {
				continue
			}
			if !threshsig.Ver(m.pk, LinearOmegaMessage(p.V), p.Sig) {
				continue
			}
			m.omega[p.V] = p.Sig
			m.omegaRound[p.V] = round
			newOmega = append(newOmega, p.V)
		case LinearSigmaCert:
			if _, known := m.sigma[p.V]; known {
				continue
			}
			sig, cert, err := combineCert(m.pk, LinearSigmaMessage(p.V), p.Shares)
			if err != nil {
				continue
			}
			m.sigma[p.V] = sig
			m.sigmaRound[p.V] = round
			if m.explicitCerts {
				m.sigmaCert[p.V] = cert
			}
			newSigma = append(newSigma, p.V)
		case LinearOmegaCert:
			if _, known := m.omega[p.V]; known {
				continue
			}
			sig, cert, err := combineCert(m.pk, LinearOmegaMessage(p.V), p.Shares)
			if err != nil {
				continue
			}
			m.omega[p.V] = sig
			m.omegaRound[p.V] = round
			if m.explicitCerts {
				m.omegaCert[p.V] = cert
			}
			newOmega = append(newOmega, p.V)
		}
	}
	// Try to combine accumulated shares into fresh signatures. Key
	// order reaches the emission path via newSigma/newOmega, so iterate
	// sorted.
	for _, v := range sortedKeys(m.voteShares) {
		shares := m.voteShares[v]
		if _, known := m.sigma[v]; known || len(shares) < m.pk.Threshold() {
			continue
		}
		sig, err := threshsig.Combine(m.pk, LinearSigmaMessage(v), collectShares(shares))
		if err != nil {
			continue
		}
		m.sigma[v] = sig
		m.sigmaRound[v] = round
		if m.explicitCerts {
			m.sigmaCert[v] = trimShares(collectShares(shares), m.pk.Threshold())
		}
		newSigma = append(newSigma, v)
	}
	for _, v := range sortedKeys(m.omegaShares) {
		shares := m.omegaShares[v]
		if _, known := m.omega[v]; known || len(shares) < m.pk.Threshold() {
			continue
		}
		sig, err := threshsig.Combine(m.pk, LinearOmegaMessage(v), collectShares(shares))
		if err != nil {
			continue
		}
		m.omega[v] = sig
		m.omegaRound[v] = round
		if m.explicitCerts {
			m.omegaCert[v] = trimShares(collectShares(shares), m.pk.Threshold())
		}
		newOmega = append(newOmega, v)
	}
	sort.Ints(newSigma)
	sort.Ints(newOmega)
	return newSigma, newOmega
}

// determineOutput applies the slot conditions (Table 1 generalized):
// output (y, g) with the maximal g >= 1 such that Σ_y arrived by round
// r-g, Ω_y by round r-g+1, and no Σ on a different value by round g+1.
func (m *LinearMachine) determineOutput() Result {
	r := m.rounds
	out := Result{Value: 0, Grade: 0}
	for _, v := range sortedKeys(m.sigmaRound) {
		or, haveOmega := m.omegaRound[v]
		if !haveOmega {
			continue
		}
		for g := 1; g <= r-1; g++ {
			if m.sigmaRound[v] > r-g || or > r-g+1 {
				continue
			}
			if !m.noOtherSigmaBy(v, g+1) {
				continue
			}
			if g > out.Grade {
				out = Result{Value: v, Grade: g}
			}
		}
	}
	return out
}

// noOtherSigmaBy reports whether no Σ on a value other than v was seen
// by the end of round j.
func (m *LinearMachine) noOtherSigmaBy(v Value, j int) bool {
	//lint:ordered pure membership predicate, no effect on state or output order
	for v2, r2 := range m.sigmaRound {
		if v2 != v && r2 <= j {
			return false
		}
	}
	return true
}

// addShare stores a share into a by-value, by-signer accumulator.
func addShare(acc map[Value]map[int]threshsig.Share, v Value, s threshsig.Share) {
	m := acc[v]
	if m == nil {
		m = make(map[int]threshsig.Share)
		acc[v] = m
	}
	if _, dup := m[s.Signer]; !dup {
		m[s.Signer] = s
	}
}

// combineCert verifies an explicit share set and returns the combined
// signature plus a trimmed certificate of exactly threshold shares.
func combineCert(pk *threshsig.PublicKey, msg []byte, shares []threshsig.Share) (threshsig.Signature, []threshsig.Share, error) {
	seen := make(map[int]bool, len(shares))
	good := make([]threshsig.Share, 0, len(shares))
	for _, s := range shares {
		if s.Signer < 0 || s.Signer >= pk.N() || seen[s.Signer] {
			continue
		}
		if !threshsig.VerShare(pk, msg, s) {
			continue
		}
		seen[s.Signer] = true
		good = append(good, s)
	}
	sig, err := threshsig.Combine(pk, msg, good)
	if err != nil {
		return threshsig.Signature{}, nil, err
	}
	return sig, trimShares(good, pk.Threshold()), nil
}

// trimShares returns a deterministic threshold-sized certificate: the
// lowest-signer shares.
func trimShares(shares []threshsig.Share, threshold int) []threshsig.Share {
	sort.Slice(shares, func(i, j int) bool { return shares[i].Signer < shares[j].Signer })
	if len(shares) > threshold {
		shares = shares[:threshold]
	}
	out := make([]threshsig.Share, len(shares))
	copy(out, shares)
	return out
}

// collectShares flattens a by-signer share map in ascending signer
// order: the result feeds threshsig.Combine and (trimmed) the explicit
// PKI certificates, both of which must not depend on map order.
func collectShares(m map[int]threshsig.Share) []threshsig.Share {
	out := make([]threshsig.Share, 0, len(m))
	//lint:ordered keys sorted below
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signer < out[j].Signer })
	return out
}

// sortedKeys returns map keys in ascending order for deterministic
// iteration.
func sortedKeys[V any](m map[Value]V) []Value {
	keys := make([]Value, 0, len(m))
	//lint:ordered keys sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
