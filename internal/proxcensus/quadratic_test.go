package proxcensus

import (
	"fmt"
	"reflect"
	"testing"
)

func TestQuadSlotsAndGrades(t *testing.T) {
	tests := []struct{ r, slots, grade int }{
		{3, 3, 1},
		{4, 5, 2},
		{5, 9, 4},
		{6, 15, 7},
		{7, 23, 11},
		{10, 59, 29},
	}
	for _, tt := range tests {
		if got := QuadSlots(tt.r); got != tt.slots {
			t.Errorf("QuadSlots(%d) = %d, want %d", tt.r, got, tt.slots)
		}
		if got := QuadMaxGrade(tt.r); got != tt.grade {
			t.Errorf("QuadMaxGrade(%d) = %d, want %d", tt.r, got, tt.grade)
		}
		// Slot/grade relation of Definition 2: s = 2G+1 (odd slot counts).
		if 2*QuadMaxGrade(tt.r)+1 != QuadSlots(tt.r) {
			t.Errorf("r=%d: slots %d != 2G+1 = %d", tt.r, QuadSlots(tt.r), 2*QuadMaxGrade(tt.r)+1)
		}
	}
}

// TestQuadConditionsTable2 reproduces Table 2 of the paper: the
// condition columns for Prox_15 (r=6, grades 1..7). Entry [g][j] is the
// index k of the threshold signature Ω_k required at the end of round j.
func TestQuadConditionsTable2(t *testing.T) {
	got := QuadConditions(6)
	// Rows below are indexed by round 1..6 (position 0 unused); values
	// transcribed from Table 2's value-0 columns, read top to bottom.
	want := map[int][]int{
		7: {0, 1, 2, 3, 4, 5, 6},
		6: {0, 0, 1, 2, 3, 4, 5},
		5: {0, 0, 1, 2, 3, 4, 4},
		4: {0, 0, 1, 2, 3, 3, 4},
		3: {0, 0, 1, 2, 3, 3, 3},
		2: {0, 0, 1, 2, 2, 3, 3},
		1: {0, 0, 1, 2, 2, 2, 3},
	}
	for g, row := range want {
		if !reflect.DeepEqual(got[g], row) {
			t.Errorf("grade %d: conditions %v, want %v", g, got[g], row)
		}
	}
}

// TestQuadConditionsDistinct: the inductive table must yield exactly
// QuadMaxGrade distinct positive-grade columns — otherwise the protocol
// would not realize its claimed slot count.
func TestQuadConditionsDistinct(t *testing.T) {
	for r := 3; r <= 12; r++ {
		table := QuadConditions(r)
		seen := make(map[string]int)
		for g := 1; g <= QuadMaxGrade(r); g++ {
			key := fmt.Sprint(table[g])
			if prev, dup := seen[key]; dup {
				t.Errorf("r=%d: grades %d and %d share condition column %v", r, prev, g, table[g])
			}
			seen[key] = g
		}
		if len(seen) != QuadMaxGrade(r) {
			t.Errorf("r=%d: %d distinct columns, want %d", r, len(seen), QuadMaxGrade(r))
		}
	}
}

// TestQuadConditionsRequireOmega3: Appendix B's value-consistency
// argument hinges on every positive grade requiring Ω_3 at some round.
func TestQuadConditionsRequireOmega3(t *testing.T) {
	for r := 3; r <= 12; r++ {
		table := QuadConditions(r)
		for g := 1; g <= QuadMaxGrade(r); g++ {
			needs3 := false
			for j := 1; j <= r; j++ {
				if table[g][j] >= 3 {
					needs3 = true
					break
				}
			}
			if !needs3 {
				t.Errorf("r=%d grade %d: condition column %v never requires Ω_3 or higher", r, g, table[g])
			}
		}
	}
}

// TestQuadConditionsMonotone: within a column the required level never
// decreases over rounds, and deadlines weaken as the grade drops.
func TestQuadConditionsMonotone(t *testing.T) {
	for r := 3; r <= 12; r++ {
		table := QuadConditions(r)
		for g := 1; g <= QuadMaxGrade(r); g++ {
			for j := 2; j <= r; j++ {
				if table[g][j] < table[g][j-1] {
					t.Errorf("r=%d grade %d: level requirement drops at round %d: %v", r, g, j, table[g])
				}
			}
		}
		// A higher grade's column dominates a lower one's pointwise.
		for g := 2; g <= QuadMaxGrade(r); g++ {
			for j := 1; j <= r; j++ {
				if table[g][j] < table[g-1][j] {
					t.Errorf("r=%d: grade %d requires less than grade %d at round %d", r, g, g-1, j)
				}
			}
		}
	}
}
