package proxcensus_test

import (
	"fmt"
	"math/rand"
	"testing"

	"proxcensus/internal/adversary"
	"proxcensus/internal/proxcensus"
	"proxcensus/internal/sim"
)

// runExpand executes the t<n/3 expansion protocol and returns the honest
// results keyed by party.
func runExpand(t *testing.T, n, tc, rounds int, inputs []int, adv sim.Adversary, seed int64) map[int]proxcensus.Result {
	t.Helper()
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		machines[i] = proxcensus.NewExpandMachine(n, tc, rounds, inputs[i])
	}
	res, err := sim.Run(sim.Config{N: n, T: tc, Rounds: rounds, Seed: seed}, machines, adv)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make(map[int]proxcensus.Result, len(res.Outputs))
	for p, o := range res.Outputs {
		out[p] = o.(proxcensus.Result)
	}
	return out
}

func resultsOf(m map[int]proxcensus.Result) []proxcensus.Result {
	out := make([]proxcensus.Result, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	return out
}

// randomEchoGen fabricates random (z, h) pairs within (or slightly out
// of) the plausible range for each round's source slot count.
func randomEchoGen(rng *rand.Rand, round int, _, _ sim.PartyID) sim.Payload {
	srcSlots := proxcensus.ExpandSlots(round - 1)
	return proxcensus.EchoPayload{
		Z: rng.Intn(2),
		H: rng.Intn(proxcensus.MaxGrade(srcSlots)+2) - rng.Intn(2),
	}
}

func TestExpandMachineValidity(t *testing.T) {
	cases := []struct{ n, tc, rounds int }{
		{4, 1, 1}, {4, 1, 3}, {7, 2, 4}, {10, 3, 5}, {13, 4, 2},
	}
	for _, c := range cases {
		for _, v := range []int{0, 1} {
			name := fmt.Sprintf("n=%d/t=%d/r=%d/v=%d", c.n, c.tc, c.rounds, v)
			t.Run(name, func(t *testing.T) {
				inputs := make([]int, c.n)
				for i := range inputs {
					inputs[i] = v
				}
				s := proxcensus.ExpandSlots(c.rounds)
				advs := []sim.Adversary{
					sim.Passive{},
					&adversary.Crash{Victims: adversary.FirstT(c.tc)},
					&adversary.Random{Victims: adversary.FirstT(c.tc), Gen: randomEchoGen},
					&adversary.Equivocator{
						Victims: adversary.FirstT(c.tc),
						A:       proxcensus.EchoPayload{Z: 0, H: 0},
						B:       proxcensus.EchoPayload{Z: 1, H: 0},
					},
				}
				for _, adv := range advs {
					got := runExpand(t, c.n, c.tc, c.rounds, inputs, adv, 11)
					honest := resultsOf(got)
					if err := proxcensus.CheckValidity(s, v, honest); err != nil {
						t.Errorf("adversary %s: %v", adv.Name(), err)
					}
				}
			})
		}
	}
}

func TestExpandMachineConsistencyUnderAttack(t *testing.T) {
	const trials = 40
	cases := []struct{ n, tc, rounds int }{
		{4, 1, 1}, {4, 1, 2}, {4, 1, 4}, {7, 2, 3}, {10, 3, 4},
	}
	for _, c := range cases {
		s := proxcensus.ExpandSlots(c.rounds)
		t.Run(fmt.Sprintf("n=%d/t=%d/r=%d", c.n, c.tc, c.rounds), func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)))
				inputs := make([]int, c.n)
				for i := range inputs {
					inputs[i] = rng.Intn(2)
				}
				adv := &adversary.Random{Victims: adversary.FirstT(c.tc), Gen: randomEchoGen}
				got := runExpand(t, c.n, c.tc, c.rounds, inputs, adv, int64(trial*31+7))
				honest := resultsOf(got)
				if err := proxcensus.CheckConsistency(s, honest); err != nil {
					t.Fatalf("trial %d inputs %v: %v", trial, inputs, err)
				}
				if err := proxcensus.CheckAdjacent(s, honest); err != nil {
					t.Fatalf("trial %d inputs %v: %v", trial, inputs, err)
				}
			}
		})
	}
}

// TestExpandMachineExhaustiveSmall model-checks the one-round expansion
// (Prox_3, n=4, t=1): every honest input vector crossed with every
// adversary message assignment from the valid payload palette.
func TestExpandMachineExhaustiveSmall(t *testing.T) {
	const n, tc, rounds = 4, 1, 1
	// The corrupted party sends one of these to each honest party:
	// value 0, value 1, or nothing.
	palette := []*proxcensus.EchoPayload{
		{Z: 0, H: 0},
		{Z: 1, H: 0},
		nil,
	}
	honestIDs := []int{1, 2, 3}
	var runs int
	for inputsMask := 0; inputsMask < 8; inputsMask++ {
		inputs := []int{0, (inputsMask >> 0) & 1, (inputsMask >> 1) & 1, (inputsMask >> 2) & 1}
		for a0 := range palette {
			for a1 := range palette {
				for a2 := range palette {
					choice := map[int]*proxcensus.EchoPayload{
						1: palette[a0], 2: palette[a1], 3: palette[a2],
					}
					adv := &adversary.Func{
						StrategyName: "scripted",
						InitFunc:     func(env *sim.Env) { env.Corrupt(0) },
						ActFunc: func(round int, _ []sim.Message, env *sim.Env) []sim.Message {
							var msgs []sim.Message
							for _, to := range honestIDs {
								if p := choice[to]; p != nil {
									msgs = append(msgs, sim.Message{From: 0, To: to, Payload: *p})
								}
							}
							return msgs
						},
					}
					got := runExpand(t, n, tc, rounds, inputs, adv, 1)
					honest := resultsOf(got)
					if err := proxcensus.CheckConsistency(3, honest); err != nil {
						t.Fatalf("inputs %v adv (%d,%d,%d): %v", inputs, a0, a1, a2, err)
					}
					// Pre-agreement among honest parties must survive.
					if inputs[1] == inputs[2] && inputs[2] == inputs[3] {
						if err := proxcensus.CheckValidity(3, inputs[1], honest); err != nil {
							t.Fatalf("inputs %v adv (%d,%d,%d): %v", inputs, a0, a1, a2, err)
						}
					}
					runs++
				}
			}
		}
	}
	if runs != 8*27 {
		t.Fatalf("explored %d executions, want %d", runs, 8*27)
	}
}

// TestExpandMachineGradesReactToSplit: a clean half/half honest split
// with a silent adversary yields grade 0 everywhere (nobody can see
// n-t on one value).
func TestExpandMachineGradesReactToSplit(t *testing.T) {
	const n, tc, rounds = 9, 2, 3
	inputs := []int{0, 0, 0, 0, 1, 1, 1, 1, 1}
	got := runExpand(t, n, tc, rounds, inputs, &adversary.Crash{Victims: []int{0, 4}}, 5)
	s := proxcensus.ExpandSlots(rounds)
	honest := resultsOf(got)
	if err := proxcensus.CheckConsistency(s, honest); err != nil {
		t.Fatal(err)
	}
	// 3 honest zeros vs 4 honest ones, n-t = 7: no value reaches n-t in
	// round 1, so everyone stays at grade 0 forever.
	for p, r := range got {
		if r.Grade != 0 {
			t.Errorf("party %d: grade %d, want 0 under even split", p, r.Grade)
		}
	}
}

// TestExpandMachineLateCorruption exercises the strongly rushing drop:
// the victim behaves honestly, then its final-round messages vanish.
func TestExpandMachineLateCorruption(t *testing.T) {
	const n, tc, rounds = 7, 2, 3
	inputs := []int{1, 1, 1, 1, 1, 1, 1}
	adv := &adversary.LateCrash{Victims: []int{3, 5}, When: rounds}
	got := runExpand(t, n, tc, rounds, inputs, adv, 3)
	honest := resultsOf(got)
	s := proxcensus.ExpandSlots(rounds)
	if err := proxcensus.CheckValidity(s, 1, honest); err != nil {
		t.Fatal(err)
	}
	if len(honest) != n-tc {
		t.Fatalf("got %d honest outputs, want %d", len(honest), n-tc)
	}
}

func TestExpandMachineMetrics(t *testing.T) {
	const n, tc, rounds = 4, 1, 3
	inputs := []int{1, 1, 1, 1}
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		machines[i] = proxcensus.NewExpandMachine(n, tc, rounds, inputs[i])
	}
	res, err := sim.Run(sim.Config{N: n, T: tc, Rounds: rounds, Seed: 1}, machines, sim.Passive{})
	if err != nil {
		t.Fatal(err)
	}
	// Unconditional protocol: zero signatures; n^2 messages per round.
	if got := res.Metrics.TotalHonestSignatures(); got != 0 {
		t.Errorf("signatures = %d, want 0 (perfectly secure protocol)", got)
	}
	if got := res.Metrics.TotalHonestMessages(); got != n*n*rounds {
		t.Errorf("messages = %d, want %d", got, n*n*rounds)
	}
}
