// Package proxcensus implements the paper's central abstraction,
// s-slot Proxcensus (Definition 2), and all four protocol families:
//
//   - Prox_{2^r+1} in r rounds for t < n/3, perfectly secure
//     (Section 3.3, Corollary 1), via the echo-expansion step.
//   - Prox_{2r-1} in r rounds for t < n/2 with unique threshold
//     signatures (Section 3.3, Lemma 3).
//   - Prox_{3+(r-3)(r-2)} ("quadratic") in r rounds for t < n/2
//     (Appendix B, Lemma 7).
//   - s-slot Proxcast (single sender) in s-1 rounds for t < n
//     (Appendix A, Lemma 6), with the player-replaceable t < n/2
//     variant.
//
// In s-slot Proxcensus every party inputs a value and outputs a value
// together with a grade in [0, G], G = floor((s-1)/2). Validity: common
// input x forces output (x, G). Consistency: honest grades differ by at
// most 1; both grades >= 1 forces equal values; for even s any positive
// grade forces equal values. Pictorially, all honest parties land in two
// adjacent slots of a line of s slots (Fig. 1).
package proxcensus

import (
	"errors"
	"fmt"
)

// Value is a Proxcensus input/output value. Binary protocols use 0 and 1;
// the definitions and protocols support any finite domain of ints.
type Value = int

// Result is a Proxcensus output: the value and its grade.
type Result struct {
	Value Value
	Grade int
}

// String renders the result like the paper's (y, g) pairs.
func (r Result) String() string { return fmt.Sprintf("(%d,%d)", r.Value, r.Grade) }

// MaxGrade returns G = floor((s-1)/2), the top grade of s-slot
// Proxcensus.
func MaxGrade(s int) int { return (s - 1) / 2 }

// SlotIndex maps a binary-domain Result to its slot position on the
// paper's slot line (Fig. 1), in [0, s-1]: slot 0 is (0, G), slot s-1 is
// (1, G), grades decrease toward the middle. For odd s the middle slot
// is the single grade-0 slot (the value is irrelevant there); for even s
// the two middle slots are (0,0) and (1,0).
func SlotIndex(s int, r Result) (int, error) {
	g := MaxGrade(s)
	if r.Grade < 0 || r.Grade > g {
		return 0, fmt.Errorf("proxcensus: grade %d out of [0,%d] for s=%d", r.Grade, g, s)
	}
	if s%2 == 1 && r.Grade == 0 {
		return g, nil // single middle slot
	}
	switch r.Value {
	case 0:
		return g - r.Grade, nil
	case 1:
		return s - 1 - (g - r.Grade), nil
	default:
		return 0, fmt.Errorf("proxcensus: SlotIndex requires binary value, got %d", r.Value)
	}
}

// Errors reported by the invariant checkers; tests and the experiment
// harness use them to classify violations.
var (
	// ErrGradeGap indicates two honest grades differ by more than 1.
	ErrGradeGap = errors.New("proxcensus: honest grades differ by more than 1")
	// ErrValueSplit indicates two honest parties with qualifying grades
	// output different values.
	ErrValueSplit = errors.New("proxcensus: honest parties with positive grades disagree on the value")
	// ErrValidity indicates pre-agreement was not preserved with the
	// maximal grade.
	ErrValidity = errors.New("proxcensus: validity violated")
	// ErrGradeRange indicates an out-of-range grade.
	ErrGradeRange = errors.New("proxcensus: grade out of range")
)

// CheckConsistency verifies Definition 2's consistency conditions over
// the honest outputs of an s-slot Proxcensus execution. It works for any
// value domain.
func CheckConsistency(s int, results []Result) error {
	g := MaxGrade(s)
	for i, a := range results {
		if a.Grade < 0 || a.Grade > g {
			return fmt.Errorf("%w: party %d grade %d not in [0,%d]", ErrGradeRange, i, a.Grade, g)
		}
	}
	for i, a := range results {
		for j, b := range results {
			if j <= i {
				continue
			}
			if diff := a.Grade - b.Grade; diff > 1 || diff < -1 {
				return fmt.Errorf("%w: party %d %v vs party %d %v", ErrGradeGap, i, a, j, b)
			}
			bothPositive := a.Grade >= 1 && b.Grade >= 1
			evenDetect := s%2 == 0 && (a.Grade > 0 || b.Grade > 0)
			if (bothPositive || evenDetect) && a.Value != b.Value {
				return fmt.Errorf("%w (s=%d): party %d %v vs party %d %v", ErrValueSplit, s, i, a, j, b)
			}
		}
	}
	return nil
}

// CheckValidity verifies Definition 2's validity: given common honest
// input x, every honest output must be (x, MaxGrade(s)).
func CheckValidity(s int, input Value, results []Result) error {
	g := MaxGrade(s)
	for i, r := range results {
		if r.Value != input || r.Grade != g {
			return fmt.Errorf("%w: common input %d but party %d output %v (want (%d,%d))",
				ErrValidity, input, i, r, input, g)
		}
	}
	return nil
}

// CheckAdjacent verifies the slot-adjacency picture for binary-domain
// executions: all honest outputs lie in at most two adjacent slots.
func CheckAdjacent(s int, results []Result) error {
	lo, hi := s, -1
	for i, r := range results {
		idx, err := SlotIndex(s, r)
		if err != nil {
			return fmt.Errorf("party %d: %w", i, err)
		}
		if idx < lo {
			lo = idx
		}
		if idx > hi {
			hi = idx
		}
	}
	if hi-lo > 1 {
		return fmt.Errorf("proxcensus: honest slots span [%d,%d], want adjacent (s=%d)", lo, hi, s)
	}
	return nil
}
