package proxcensus

import (
	"testing"

	"proxcensus/internal/crypto/threshsig"
	"proxcensus/internal/sim"
)

// TestLinearCertMode exercises the PKI wire format end to end: one
// party forms Σ and Ω from shares and forwards explicit certificates;
// a second party must reconstruct the signatures from the received
// share sets.
func TestLinearCertMode(t *testing.T) {
	const n, tc, r = 3, 1, 3
	pk, sks := dealHalf(t, n, tc)

	leader := NewLinearMachine(n, tc, r, 0, pk, sks[0]).UseExplicitCertificates()
	follower := NewLinearMachine(n, tc, r, 1, pk, sks[2]).UseExplicitCertificates()

	dLeader := newLinearDriver(leader, 0)
	dFollower := newLinearDriver(follower, 2)

	// Round 1: the leader receives the missing vote share (from the
	// Byzantine party 1) and forms Σ_0; the follower hears nothing.
	dLeader.step(1, []sim.Message{vote(pk, sks[1], 1, 0)})
	dFollower.step(1, nil)

	// The leader's round-2 sends must include an explicit certificate.
	var cert *LinearSigmaCert
	var omegaShare0 *LinearOmegaShare
	for _, s := range dLeader.pending {
		switch p := s.Payload.(type) {
		case LinearSigmaCert:
			cp := p
			cert = &cp
		case LinearOmegaShare:
			op := p
			omegaShare0 = &op
		case LinearSigma:
			t.Fatal("cert mode must not emit combined signatures")
		}
	}
	if cert == nil {
		t.Fatal("leader did not forward a sigma certificate")
	}
	if len(cert.Shares) != pk.Threshold() {
		t.Fatalf("certificate has %d shares, want threshold %d", len(cert.Shares), pk.Threshold())
	}
	if cert.SigCount() != pk.Threshold() {
		t.Fatalf("SigCount = %d, want %d (the factor-n blowup)", cert.SigCount(), pk.Threshold())
	}
	if cert.ByteSize() <= threshsig.Size {
		t.Fatal("ByteSize implausibly small")
	}
	if omegaShare0 == nil {
		t.Fatal("leader did not attest its singleton round-1 view")
	}

	// Round 2: the follower receives the certificate and must
	// reconstruct Σ_0 (the combineCert path), plus omega shares from
	// the leader and the Byzantine party to form Ω_0.
	dFollower.step(2, []sim.Message{
		{From: 0, Payload: *cert},
		{From: 0, Payload: *omegaShare0},
		omegaShareMsg(sks[1], 1, 0),
	})
	dLeader.step(2, []sim.Message{omegaShareMsg(sks[1], 1, 0)})

	dFollower.step(3, nil)
	dLeader.step(3, nil)

	outF, _ := follower.Output()
	if want := (Result{0, 1}); outF != want {
		t.Fatalf("follower output %v, want %v (Σ via certificate at round 2)", outF, want)
	}
	outL, _ := leader.Output()
	if want := (Result{0, 2}); outL != want {
		t.Fatalf("leader output %v, want %v", outL, want)
	}
}

// omegaShareMsg builds an omega-share message (helper distinct from the
// one in linear_test to keep this file self-contained).
func omegaShareMsg(sk *threshsig.SecretKey, from sim.PartyID, v Value) sim.Message {
	return sim.Message{From: from, Payload: LinearOmegaShare{V: v, Share: threshsig.SignShare(sk, LinearOmegaMessage(v))}}
}

// TestLinearCertModeRejectsBadCertificates: under-threshold, duplicate-
// signer and wrong-message certificates must not create signatures.
func TestLinearCertModeRejectsBadCertificates(t *testing.T) {
	const n, tc, r = 3, 1, 3
	pk, sks := dealHalf(t, n, tc)
	m := NewLinearMachine(n, tc, r, 0, pk, sks[2]).UseExplicitCertificates()
	d := newLinearDriver(m, 2)

	short := LinearSigmaCert{V: 1, Shares: []threshsig.Share{
		threshsig.SignShare(sks[1], LinearSigmaMessage(1)),
	}}
	dup := LinearSigmaCert{V: 1, Shares: []threshsig.Share{
		threshsig.SignShare(sks[1], LinearSigmaMessage(1)),
		threshsig.SignShare(sks[1], LinearSigmaMessage(1)),
	}}
	wrongMsg := LinearSigmaCert{V: 1, Shares: []threshsig.Share{
		threshsig.SignShare(sks[0], LinearSigmaMessage(0)), // share on 0 claimed for 1
		threshsig.SignShare(sks[1], LinearSigmaMessage(1)),
	}}
	outOfRange := LinearSigmaCert{V: 1, Shares: []threshsig.Share{
		{Signer: 99},
		threshsig.SignShare(sks[1], LinearSigmaMessage(1)),
	}}
	d.step(1, []sim.Message{
		{From: 1, Payload: short},
		{From: 1, Payload: dup},
		{From: 1, Payload: wrongMsg},
		{From: 1, Payload: outOfRange},
		vote(pk, sks[0], 0, 0),
	})
	d.step(2, []sim.Message{omegaShareMsg(sks[0], 0, 0)})
	d.step(3, nil)
	out, _ := m.Output()
	// All bad certificates for value 1 ignored: the machine reaches the
	// top slot for value 0 as if they never arrived.
	if want := (Result{0, 2}); out != want {
		t.Fatalf("output %v, want %v", out, want)
	}
}

// TestLinearCertModeOmegaCert: an Ω certificate is forwarded and
// reconstructed too.
func TestLinearCertModeOmegaCert(t *testing.T) {
	const n, tc, r = 3, 1, 4
	pk, sks := dealHalf(t, n, tc)
	m := NewLinearMachine(n, tc, r, 1, pk, sks[2]).UseExplicitCertificates()
	d := newLinearDriver(m, 2)

	sigmaCert := LinearSigmaCert{V: 0, Shares: []threshsig.Share{
		threshsig.SignShare(sks[0], LinearSigmaMessage(0)),
		threshsig.SignShare(sks[1], LinearSigmaMessage(0)),
	}}
	omegaCert := LinearOmegaCert{V: 0, Shares: []threshsig.Share{
		threshsig.SignShare(sks[0], LinearOmegaMessage(0)),
		threshsig.SignShare(sks[1], LinearOmegaMessage(0)),
	}}
	d.step(1, []sim.Message{{From: 0, Payload: sigmaCert}})
	d.step(2, []sim.Message{{From: 0, Payload: omegaCert}})
	// The machine must re-forward the omega certificate it accepted.
	forwarded := false
	for _, s := range d.pending {
		if _, ok := s.Payload.(LinearOmegaCert); ok {
			forwarded = true
		}
	}
	if !forwarded {
		t.Error("accepted omega certificate was not re-forwarded in cert form")
	}
	d.step(3, nil)
	d.step(4, nil)
	out, _ := m.Output()
	// Σ_0 by round 1 <= r-g, Ω_0 by round 2 <= r-g+1, no conflict:
	// grade r-1 = 3 requires Σ by round 1 — satisfied.
	if want := (Result{0, 3}); out != want {
		t.Fatalf("output %v, want %v", out, want)
	}
}
