package proxcensus_test

import (
	"fmt"
	"math/rand"
	"testing"

	"proxcensus/internal/adversary"
	"proxcensus/internal/crypto/threshsig"
	"proxcensus/internal/proxcensus"
	"proxcensus/internal/sim"
)

// threshSign is shorthand for threshsig.SignShare.
func threshSign(sk *threshsig.SecretKey, m []byte) threshsig.Share {
	return threshsig.SignShare(sk, m)
}

// The Proxcensus definitions work over any finite domain (Definition 2)
// even though the BA layer is binary. These tests run the protocols on
// larger domains.

func TestExpandMachineMultivaluedValidity(t *testing.T) {
	const n, tc, rounds = 7, 2, 3
	for _, v := range []int{0, 5, 1000, -3} {
		t.Run(fmt.Sprint(v), func(t *testing.T) {
			inputs := make([]int, n)
			for i := range inputs {
				inputs[i] = v
			}
			got := runExpand(t, n, tc, rounds, inputs, &adversary.Crash{Victims: adversary.FirstT(tc)}, 3)
			s := proxcensus.ExpandSlots(rounds)
			if err := proxcensus.CheckValidity(s, v, resultsOf(got)); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestExpandMachineMultivaluedConsistency(t *testing.T) {
	const n, tc, rounds, trials = 7, 2, 3, 25
	domain := []int{11, 22, 33, 44}
	gen := func(rng *rand.Rand, round int, _, _ sim.PartyID) sim.Payload {
		srcSlots := proxcensus.ExpandSlots(round - 1)
		return proxcensus.EchoPayload{
			Z: domain[rng.Intn(len(domain))],
			H: rng.Intn(proxcensus.MaxGrade(srcSlots) + 1),
		}
	}
	s := proxcensus.ExpandSlots(rounds)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = domain[rng.Intn(len(domain))]
		}
		adv := &adversary.Random{Victims: adversary.FirstT(tc), Gen: gen}
		got := runExpand(t, n, tc, rounds, inputs, adv, int64(trial*11+3))
		// Multivalued: check the definitional conditions (no slot-line
		// adjacency, which is a binary rendering).
		if err := proxcensus.CheckConsistency(s, resultsOf(got)); err != nil {
			t.Fatalf("trial %d inputs %v: %v", trial, inputs, err)
		}
	}
}

func TestLinearMachineMultivaluedAgainstEquivocation(t *testing.T) {
	// Byzantine senders sign BOTH of two values and give each honest
	// party a different one; consistency must still hold over the int
	// domain.
	const n, tc, rounds, trials = 5, 2, 3, 20
	_, sks := dealHalfScheme(t, n, tc)
	s := proxcensus.LinearSlots(rounds)
	gen := func(rng *rand.Rand, round int, from, to sim.PartyID) sim.Payload {
		v := []int{700, 900}[rng.Intn(2)]
		if round == 1 {
			return proxcensus.LinearVote{V: v, Share: threshSign(sks[from], proxcensus.LinearSigmaMessage(v))}
		}
		return proxcensus.LinearOmegaShare{V: v, Share: threshSign(sks[from], proxcensus.LinearOmegaMessage(v))}
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = []int{700, 900}[rng.Intn(2)]
		}
		adv := &adversary.Random{Victims: adversary.FirstT(tc), Gen: gen}
		got := runLinear(t, n, tc, rounds, inputs, adv, int64(trial*13+7))
		if err := proxcensus.CheckConsistency(s, resultsOf(got)); err != nil {
			t.Fatalf("trial %d inputs %v: %v", trial, inputs, err)
		}
	}
}

// TestScaleLargeN runs the protocols at n=40 — a sanity check that
// nothing in the implementation is accidentally exponential in n.
func TestScaleLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	t.Run("expand n=40 t=13 r=6", func(t *testing.T) {
		const n, tc, rounds = 40, 13, 6
		inputs := adversary.ExpandSplitInputs(n, tc)
		got := runExpand(t, n, tc, rounds, inputs, &adversary.Crash{Victims: adversary.FirstT(tc)}, 2)
		s := proxcensus.ExpandSlots(rounds)
		if err := proxcensus.CheckConsistency(s, resultsOf(got)); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("linear n=41 t=20 r=4", func(t *testing.T) {
		const n, tc, rounds = 41, 20, 4
		inputs := adversary.LinearSplitInputs(n, tc)
		got := runLinear(t, n, tc, rounds, inputs, &adversary.Crash{Victims: adversary.FirstT(tc)}, 2)
		s := proxcensus.LinearSlots(rounds)
		if err := proxcensus.CheckConsistency(s, resultsOf(got)); err != nil {
			t.Fatal(err)
		}
	})
}

// Trivial-surface assertions: the reporting getters are part of the
// public behaviour of the machines.
func TestMachineGetters(t *testing.T) {
	pk, sks := dealHalfScheme(t, 5, 2)
	em := proxcensus.NewExpandMachine(7, 2, 4, 0)
	if em.Rounds() != 4 || em.Slots() != 17 {
		t.Errorf("expand getters: rounds=%d slots=%d", em.Rounds(), em.Slots())
	}
	lm := proxcensus.NewLinearMachine(5, 2, 4, 0, pk, sks[0])
	if lm.Rounds() != 4 || lm.Slots() != 7 {
		t.Errorf("linear getters: rounds=%d slots=%d", lm.Rounds(), lm.Slots())
	}
	qm := proxcensus.NewQuadMachine(5, 2, 5, 0, pk, sks[0])
	if qm.Rounds() != 5 || qm.Slots() != 9 {
		t.Errorf("quad getters: rounds=%d slots=%d", qm.Rounds(), qm.Slots())
	}
	pm := proxcensus.NewProxcastMachine(proxcensus.ProxcastConfig{N: 5, T: 2, Slots: 9})
	if pm.Rounds() != 8 {
		t.Errorf("proxcast rounds = %d", pm.Rounds())
	}
}
