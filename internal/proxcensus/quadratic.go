package proxcensus

import (
	"encoding/binary"
	"sort"

	"proxcensus/internal/crypto/threshsig"
	"proxcensus/internal/sim"
)

// The quadratic t < n/2 protocol Prox_{3+(r-3)(r-2)} (Appendix B,
// Lemma 7) generalizes the linear protocol: instead of a single omega
// proof, every round j > 1 a party whose round-(j-1) view was the
// unique, unconflicted threshold signature Ω_{j-1} on v issues a fresh
// share toward the level-j signature Ω_j. The chain Ω_1, Ω_2, ..., Ω_r
// certifies progressively stronger agreement, and the inductively
// defined condition table (Table 2 shows r=6, Prox_15) converts arrival
// rounds of the Ω_k into 1 + (r-3)(r-2)/2 distinct positive grades.

// QuadVote is the round-1 payload: the sender's input and its share
// toward the level-1 signature Ω_1 (the plain value signature).
type QuadVote struct {
	V     Value
	Share threshsig.Share
}

var _ sim.Payload = QuadVote{}

// SigCount implements sim.Payload.
func (QuadVote) SigCount() int { return 1 }

// ByteSize implements sim.Payload.
func (QuadVote) ByteSize() int { return 8 + 8 + threshsig.Size }

// QuadOmegaShare is a share toward the level-J signature Ω_J on V,
// issued at round J by parties that formed Ω_{J-1} at round J-1 without
// ever seeing a conflicting signature.
type QuadOmegaShare struct {
	V     Value
	J     int
	Share threshsig.Share
}

var _ sim.Payload = QuadOmegaShare{}

// SigCount implements sim.Payload.
func (QuadOmegaShare) SigCount() int { return 1 }

// ByteSize implements sim.Payload.
func (QuadOmegaShare) ByteSize() int { return 8 + 8 + 8 + threshsig.Size }

// QuadSig forwards a combined level-J threshold signature on V.
type QuadSig struct {
	V   Value
	J   int
	Sig threshsig.Signature
}

var _ sim.Payload = QuadSig{}

// SigCount implements sim.Payload.
func (QuadSig) SigCount() int { return 1 }

// ByteSize implements sim.Payload.
func (QuadSig) ByteSize() int { return 8 + 8 + threshsig.Size }

// QuadMessage is the byte string sign-shared for the level-j signature
// Ω_j on v.
func QuadMessage(v Value, j int) []byte {
	buf := make([]byte, 0, 32)
	buf = append(buf, "prox-quad/"...)
	var enc [16]byte
	binary.BigEndian.PutUint64(enc[:8], uint64(int64(v)))
	binary.BigEndian.PutUint64(enc[8:], uint64(j))
	return append(buf, enc[:]...)
}

// QuadSlots returns the slot count 3 + (r-3)(r-2) achieved in r rounds.
func QuadSlots(rounds int) int { return 3 + (rounds-3)*(rounds-2) }

// QuadMaxGrade returns the top grade G = 1 + (r-3)(r-2)/2 of the
// r-round quadratic protocol.
func QuadMaxGrade(rounds int) int { return 1 + (rounds-3)*(rounds-2)/2 }

// QuadConditions builds the inductive condition table of Appendix B for
// an r-round execution. The entry table[g][j] (grades 1..G, rounds
// 1..r) is the level k such that Ω_k must be held for the value by the
// end of round j to claim grade g; 0 means no requirement.
//
// The induction (reproducing Table 2): the top grade requires forming
// Ω_j at every round j; below, Condition_{g,j} requires Ω_{j-1} at
// round j whenever grade g+1's condition calls for Ω_j at some later
// round, and otherwise inherits grade g+1's requirement of the previous
// round.
func QuadConditions(rounds int) [][]int {
	g := QuadMaxGrade(rounds)
	table := make([][]int, g+1) // index by grade; grade 0 row stays nil
	table[g] = make([]int, rounds+1)
	for j := 1; j <= rounds; j++ {
		table[g][j] = j
	}
	for grade := g - 1; grade >= 1; grade-- {
		row := make([]int, rounds+1)
		above := table[grade+1]
		for j := 2; j <= rounds; j++ {
			laterNeedsJ := false
			for j2 := j + 1; j2 <= rounds; j2++ {
				if above[j2] == j {
					laterNeedsJ = true
					break
				}
			}
			if laterNeedsJ {
				row[j] = j - 1
			} else {
				row[j] = above[j-1]
			}
		}
		table[grade] = row
	}
	return table
}

// QuadMachine is one party's Prox_{3+(r-3)(r-2)} state machine.
type QuadMachine struct {
	n, t, rounds int
	input        Value
	pk           *threshsig.PublicKey
	sk           *threshsig.SecretKey
	round        int
	conditions   [][]int

	// shares accumulates omega shares by (value, level, signer).
	shares map[Value]map[int]map[int]threshsig.Share
	// sigs holds the combined signature per (value, level).
	sigs map[Value]map[int]threshsig.Signature
	// haveBy records the round each (value, level) signature was first
	// formed or received.
	haveBy map[Value]map[int]int
	// combinedAt records the round each (value, level) signature was
	// combined from shares by this party (0 if only received).
	combinedAt map[Value]map[int]int

	out Result
}

var _ sim.Machine = (*QuadMachine)(nil)

// NewQuadMachine builds one party's machine for the r-round quadratic
// Proxcensus. The scheme must have threshold n-t. rounds >= 3.
func NewQuadMachine(n, t, rounds int, input Value, pk *threshsig.PublicKey, sk *threshsig.SecretKey) *QuadMachine {
	return &QuadMachine{
		n:          n,
		t:          t,
		rounds:     rounds,
		input:      input,
		pk:         pk,
		sk:         sk,
		conditions: QuadConditions(rounds),
		shares:     make(map[Value]map[int]map[int]threshsig.Share),
		sigs:       make(map[Value]map[int]threshsig.Signature),
		haveBy:     make(map[Value]map[int]int),
		combinedAt: make(map[Value]map[int]int),
	}
}

// Rounds returns the protocol's round budget.
func (m *QuadMachine) Rounds() int { return m.rounds }

// Slots returns the slot count of the output.
func (m *QuadMachine) Slots() int { return QuadSlots(m.rounds) }

// Start implements sim.Machine.
func (m *QuadMachine) Start() []sim.Send {
	return sim.BroadcastSend(QuadVote{
		V:     m.input,
		Share: threshsig.SignShare(m.sk, QuadMessage(m.input, 1)),
	})
}

// Deliver implements sim.Machine.
func (m *QuadMachine) Deliver(round int, in []sim.Message) []sim.Send {
	if round > m.rounds {
		return nil
	}
	m.round = round
	fresh := m.absorb(round, in)
	if round == m.rounds {
		m.out = m.determineOutput()
		return nil
	}

	sends := make([]sim.Send, 0, len(fresh)+1)
	for _, f := range fresh {
		sends = append(sends, sim.Send{To: sim.Broadcast, Payload: QuadSig{V: f.v, J: f.j, Sig: m.sigs[f.v][f.j]}})
	}
	// Issue the level-(round+1) omega share if this party combined
	// Ω_round at round `round` for a unique value and has never seen a
	// signature on any other value.
	next := round + 1
	if v, ok := m.uniqueCombinedAt(round); ok && m.noConflict(v) {
		sends = append(sends, sim.Send{To: sim.Broadcast, Payload: QuadOmegaShare{
			V:     v,
			J:     next,
			Share: threshsig.SignShare(m.sk, QuadMessage(v, next)),
		}})
	}
	return sends
}

// Output implements sim.Machine.
func (m *QuadMachine) Output() (any, bool) {
	if m.round < m.rounds {
		return nil, false
	}
	return m.out, true
}

type freshSig struct {
	v Value
	j int
}

// absorb ingests one round's traffic and returns newly known (value,
// level) signatures for forwarding, sorted deterministically.
func (m *QuadMachine) absorb(round int, in []sim.Message) []freshSig {
	var fresh []freshSig
	for _, msg := range in {
		switch p := msg.Payload.(type) {
		case QuadVote:
			if p.Share.Signer != msg.From {
				continue
			}
			if !threshsig.VerShare(m.pk, QuadMessage(p.V, 1), p.Share) {
				continue
			}
			m.addShare(p.V, 1, p.Share)
		case QuadOmegaShare:
			if p.Share.Signer != msg.From || p.J < 2 || p.J > m.rounds {
				continue
			}
			if !threshsig.VerShare(m.pk, QuadMessage(p.V, p.J), p.Share) {
				continue
			}
			m.addShare(p.V, p.J, p.Share)
		case QuadSig:
			if p.J < 1 || p.J > m.rounds || m.known(p.V, p.J) {
				continue
			}
			if !threshsig.Ver(m.pk, QuadMessage(p.V, p.J), p.Sig) {
				continue
			}
			m.record(p.V, p.J, p.Sig, round, false)
			fresh = append(fresh, freshSig{v: p.V, j: p.J})
		}
	}
	// Combine any share sets that crossed the threshold. Key order
	// reaches the emission path via fresh (and Combine sees the share
	// sets), so iterate values and levels sorted.
	for _, v := range sortedKeys(m.shares) {
		byLevel := m.shares[v]
		for _, j := range sortedKeys(byLevel) {
			bySigner := byLevel[j]
			if m.known(v, j) || len(bySigner) < m.pk.Threshold() {
				continue
			}
			sig, err := threshsig.Combine(m.pk, QuadMessage(v, j), collectShares(bySigner))
			if err != nil {
				continue
			}
			m.record(v, j, sig, round, true)
			fresh = append(fresh, freshSig{v: v, j: j})
		}
	}
	sort.Slice(fresh, func(i, k int) bool {
		if fresh[i].v != fresh[k].v {
			return fresh[i].v < fresh[k].v
		}
		return fresh[i].j < fresh[k].j
	})
	return fresh
}

// addShare stores an omega share by (value, level, signer).
func (m *QuadMachine) addShare(v Value, j int, s threshsig.Share) {
	byLevel := m.shares[v]
	if byLevel == nil {
		byLevel = make(map[int]map[int]threshsig.Share)
		m.shares[v] = byLevel
	}
	bySigner := byLevel[j]
	if bySigner == nil {
		bySigner = make(map[int]threshsig.Share)
		byLevel[j] = bySigner
	}
	if _, dup := bySigner[s.Signer]; !dup {
		bySigner[s.Signer] = s
	}
}

// known reports whether the (value, level) signature is already held.
func (m *QuadMachine) known(v Value, j int) bool {
	_, ok := m.sigs[v][j]
	return ok
}

// record stores a signature with its arrival round.
func (m *QuadMachine) record(v Value, j int, sig threshsig.Signature, round int, combined bool) {
	if m.sigs[v] == nil {
		m.sigs[v] = make(map[int]threshsig.Signature)
		m.haveBy[v] = make(map[int]int)
		m.combinedAt[v] = make(map[int]int)
	}
	m.sigs[v][j] = sig
	m.haveBy[v][j] = round
	if combined {
		m.combinedAt[v][j] = round
	}
}

// uniqueCombinedAt returns the unique value whose level-`round`
// signature this party combined during round `round`, if exactly one
// value qualifies.
func (m *QuadMachine) uniqueCombinedAt(round int) (Value, bool) {
	var found Value
	count := 0
	//lint:ordered counts matches; the unique witness is order-independent
	for v, byLevel := range m.combinedAt {
		if byLevel[round] == round {
			found = v
			count++
		}
	}
	return found, count == 1
}

// noConflict reports whether no signature of any level is held on a
// value different from v.
func (m *QuadMachine) noConflict(v Value) bool {
	//lint:ordered pure membership predicate, no effect on state or output order
	for v2, byLevel := range m.sigs {
		if v2 != v && len(byLevel) > 0 {
			return false
		}
	}
	return true
}

// determineOutput scans grades from the top down and outputs the first
// (value, grade) whose full condition column is met.
func (m *QuadMachine) determineOutput() Result {
	values := sortedKeys(m.haveBy)
	for g := QuadMaxGrade(m.rounds); g >= 1; g-- {
		row := m.conditions[g]
		for _, v := range values {
			if m.meets(v, row) {
				return Result{Value: v, Grade: g}
			}
		}
	}
	return Result{Value: 0, Grade: 0}
}

// meets reports whether value v satisfies a condition row: for every
// round j with a required level k, Ω_k on v arrived by round j.
func (m *QuadMachine) meets(v Value, row []int) bool {
	byLevel := m.haveBy[v]
	for j := 1; j <= m.rounds; j++ {
		k := row[j]
		if k == 0 {
			continue
		}
		got, ok := byLevel[k]
		if !ok || got > j {
			return false
		}
	}
	return true
}
