package proxcensus

import (
	"testing"

	"proxcensus/internal/crypto/threshsig"
	"proxcensus/internal/sim"
)

// dealHalf deals an (n-t)-out-of-n scheme for the half-corruption
// regime.
func dealHalf(t *testing.T, n, tc int) (*threshsig.PublicKey, []*threshsig.SecretKey) {
	t.Helper()
	var seed [threshsig.Size]byte
	seed[0] = 0x11
	pk, sks, err := threshsig.Deal(n, n-tc, seed)
	if err != nil {
		t.Fatal(err)
	}
	return pk, sks
}

// linearDriver manually drives a single LinearMachine, feeding back its
// own broadcasts plus scripted peer traffic each round.
type linearDriver struct {
	m       *LinearMachine
	self    sim.PartyID
	pending []sim.Send
}

func newLinearDriver(m *LinearMachine, self sim.PartyID) *linearDriver {
	return &linearDriver{m: m, self: self, pending: m.Start()}
}

// step delivers the machine's own round traffic plus extra messages.
func (d *linearDriver) step(round int, extra []sim.Message) {
	in := make([]sim.Message, 0, len(extra)+len(d.pending))
	for _, s := range d.pending {
		if s.To == sim.Broadcast || s.To == d.self {
			in = append(in, sim.Message{From: d.self, To: d.self, Round: round, Payload: s.Payload})
		}
	}
	for _, m := range extra {
		m.Round = round
		m.To = d.self
		in = append(in, m)
	}
	d.pending = d.m.Deliver(round, in)
}

func vote(pk *threshsig.PublicKey, sk *threshsig.SecretKey, from sim.PartyID, v Value) sim.Message {
	_ = pk
	return sim.Message{From: from, Payload: LinearVote{V: v, Share: threshsig.SignShare(sk, LinearSigmaMessage(v))}}
}

func omegaShare(sk *threshsig.SecretKey, from sim.PartyID, v Value) sim.Message {
	return sim.Message{From: from, Payload: LinearOmegaShare{V: v, Share: threshsig.SignShare(sk, LinearOmegaMessage(v))}}
}

// TestLinearTable1 reproduces the slot conditions of Table 1 (Prox_5,
// r=3, binary) from the point of view of honest party 2, with n=3, t=1
// (threshold n-t=2). Party 0 is an honest peer, party 1 is Byzantine.
func TestLinearTable1(t *testing.T) {
	const n, tc, r = 3, 1, 3
	pk, sks := dealHalf(t, n, tc)

	newMachine := func(input Value) (*LinearMachine, *linearDriver) {
		m := NewLinearMachine(n, tc, r, input, pk, sks[2])
		return m, newLinearDriver(m, 2)
	}

	t.Run("slot (0,2): sigma r1, omega r2, never a conflict", func(t *testing.T) {
		m, d := newMachine(0)
		d.step(1, []sim.Message{vote(pk, sks[0], 0, 0)})
		d.step(2, []sim.Message{omegaShare(sks[0], 0, 0)})
		d.step(3, nil)
		out, _ := m.Output()
		if want := (Result{0, 2}); out != want {
			t.Fatalf("output %v, want %v", out, want)
		}
	})

	t.Run("slot (0,1): sigma r2, omega r2, no conflict by r2", func(t *testing.T) {
		m, d := newMachine(0)
		// Round 1: only own vote; no Σ yet.
		d.step(1, nil)
		// Round 2: the missing share arrives late; peers' omega shares
		// (issued because *their* round-1 view was the singleton {Σ_0})
		// combine into Ω_0.
		d.step(2, []sim.Message{
			vote(pk, sks[1], 1, 0),
			omegaShare(sks[0], 0, 0),
			omegaShare(sks[1], 1, 0),
		})
		d.step(3, nil)
		out, _ := m.Output()
		if want := (Result{0, 1}); out != want {
			t.Fatalf("output %v, want %v", out, want)
		}
	})

	t.Run("slot (bot,0): split votes, nothing forms", func(t *testing.T) {
		m, d := newMachine(0)
		d.step(1, []sim.Message{vote(pk, sks[1], 1, 1)})
		d.step(2, nil)
		d.step(3, nil)
		out, _ := m.Output()
		if want := (Result{0, 0}); out != want {
			t.Fatalf("output %v, want %v", out, want)
		}
	})

	t.Run("slot (1,2): symmetric top for value 1", func(t *testing.T) {
		m, d := newMachine(1)
		d.step(1, []sim.Message{vote(pk, sks[0], 0, 1)})
		d.step(2, []sim.Message{omegaShare(sks[0], 0, 1)})
		d.step(3, nil)
		out, _ := m.Output()
		if want := (Result{1, 2}); out != want {
			t.Fatalf("output %v, want %v", out, want)
		}
	})

	t.Run("late conflicting sigma kills the grade", func(t *testing.T) {
		m, d := newMachine(0)
		d.step(1, []sim.Message{vote(pk, sks[0], 0, 0)})
		// Round 2: omega arrives, but so does a conflicting Σ_1 (the
		// Byzantine party combines its own share with a replayed honest
		// one — here directly crafted with two corrupted-key shares for
		// the test).
		sigma1, err := threshsig.Combine(pk, LinearSigmaMessage(1), []threshsig.Share{
			threshsig.SignShare(sks[1], LinearSigmaMessage(1)),
			threshsig.SignShare(sks[0], LinearSigmaMessage(1)),
		})
		if err != nil {
			t.Fatal(err)
		}
		d.step(2, []sim.Message{
			omegaShare(sks[0], 0, 0),
			{From: 1, Payload: LinearSigma{V: 1, Sig: sigma1}},
		})
		d.step(3, nil)
		out, _ := m.Output()
		// Σ_1 by round 2 violates "no other value by round g+1" for both
		// g=1 and g=2.
		if want := (Result{0, 0}); out != want {
			t.Fatalf("output %v, want %v", out, want)
		}
	})

	t.Run("conflict only in round 3 allows grade 1", func(t *testing.T) {
		m, d := newMachine(0)
		d.step(1, []sim.Message{vote(pk, sks[0], 0, 0)})
		d.step(2, []sim.Message{omegaShare(sks[0], 0, 0)})
		sigma1, err := threshsig.Combine(pk, LinearSigmaMessage(1), []threshsig.Share{
			threshsig.SignShare(sks[1], LinearSigmaMessage(1)),
			threshsig.SignShare(sks[0], LinearSigmaMessage(1)),
		})
		if err != nil {
			t.Fatal(err)
		}
		d.step(3, []sim.Message{{From: 1, Payload: LinearSigma{V: 1, Sig: sigma1}}})
		out, _ := m.Output()
		// g=2 needs no conflict through round 3: dead. g=1 only needs
		// rounds 1-2 clean: alive.
		if want := (Result{0, 1}); out != want {
			t.Fatalf("output %v, want %v", out, want)
		}
	})
}

func TestLinearMachineIgnoresGarbage(t *testing.T) {
	const n, tc, r = 3, 1, 3
	pk, sks := dealHalf(t, n, tc)
	m := NewLinearMachine(n, tc, r, 0, pk, sks[2])
	d := newLinearDriver(m, 2)

	badShare := threshsig.SignShare(sks[1], LinearSigmaMessage(1)) // share on 1...
	var fakeSig threshsig.Signature
	d.step(1, []sim.Message{
		vote(pk, sks[0], 0, 0),
		{From: 1, Payload: LinearVote{V: 0, Share: badShare}}, // ...claimed for 0
		{From: 0, Payload: LinearVote{V: 1, Share: threshsig.SignShare(sks[1], LinearSigmaMessage(1))}}, // signer != From
		{From: 1, Payload: LinearSigma{V: 1, Sig: fakeSig}},                                             // invalid Σ
		{From: 1, Payload: LinearOmega{V: 1, Sig: fakeSig}},                                             // invalid Ω
		{From: 1, Payload: EchoPayload{Z: 9, H: 9}},                                                     // alien payload
	})
	d.step(2, []sim.Message{omegaShare(sks[0], 0, 0)})
	d.step(3, nil)
	out, _ := m.Output()
	if want := (Result{0, 2}); out != want {
		t.Fatalf("output %v, want %v (garbage must not interfere)", out, want)
	}
}

func TestLinearSlots(t *testing.T) {
	tests := []struct{ r, want int }{{2, 3}, {3, 5}, {4, 7}, {10, 19}}
	for _, tt := range tests {
		if got := LinearSlots(tt.r); got != tt.want {
			t.Errorf("LinearSlots(%d) = %d, want %d", tt.r, got, tt.want)
		}
	}
}

func TestLinearPayloadAccounting(t *testing.T) {
	payloads := []sim.Payload{LinearVote{}, LinearOmegaShare{}, LinearSigma{}, LinearOmega{}}
	for _, p := range payloads {
		if p.SigCount() != 1 {
			t.Errorf("%T SigCount = %d, want 1", p, p.SigCount())
		}
		if p.ByteSize() < threshsig.Size {
			t.Errorf("%T ByteSize = %d, too small", p, p.ByteSize())
		}
	}
}
