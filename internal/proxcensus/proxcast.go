package proxcensus

import (
	"proxcensus/internal/crypto/sig"
	"proxcensus/internal/quorum"
	"proxcensus/internal/sim"
)

// Proxcast (Appendix A, Lemma 6) is the single-sender version of
// Proxcensus: a dealer distributes a signed input and for s-2 further
// rounds every party forwards the set of valid dealer-signed pairs it
// has seen (at most two distinct pairs matter — two contradicting
// signatures already prove dealer misbehaviour). A party claims grade g
// for value z if its set was exactly the singleton {(z, σ)} at the end
// of 2g+1-b consecutive rounds (s = 2k+b). The protocol achieves s-slot
// Proxcast in s-1 rounds against t < n corruptions, improving on the
// M-gradecast of Garay et al.
//
// The player-replaceable variant for t < n/2 additionally requires the
// singleton pair to have been forwarded by at least n-t parties in each
// round after the first, which guarantees an honest forwarder per round
// even when every round is executed by a fresh committee.

// ProxcastPair is a dealer-signed value.
type ProxcastPair struct {
	Z   Value
	Sig sig.Signature
}

// ProxcastSet is the per-round payload: the sender's current set of
// valid dealer-signed pairs, capped at two entries.
type ProxcastSet struct {
	Pairs []ProxcastPair
}

var _ sim.Payload = ProxcastSet{}

// SigCount implements sim.Payload.
func (p ProxcastSet) SigCount() int { return len(p.Pairs) }

// ByteSize implements sim.Payload.
func (p ProxcastSet) ByteSize() int { return 8 + len(p.Pairs)*(8+sig.Size) }

// ProxcastMessage is the byte string the dealer signs for value z.
func ProxcastMessage(z Value) []byte { return tagValue("proxcast/", z) }

// ProxcastRounds returns the round budget s-1 for s-slot Proxcast.
func ProxcastRounds(s int) int { return s - 1 }

// ProxcastMachine is one party's s-slot Proxcast state machine; the
// dealer's machine additionally opens the protocol with its signed
// input.
type ProxcastMachine struct {
	n, t, s    int
	self       sim.PartyID
	dealer     sim.PartyID
	input      Value // meaningful on the dealer only
	dealerPK   *sig.PublicKey
	dealerSK   *sig.SecretKey // nil on non-dealers
	replayable bool           // player-replaceable n-t forwarding rule
	round      int

	// set is the current S, capped at two distinct pairs.
	set []ProxcastPair
	// singleRounds records, per protocol round, whether S was a
	// singleton at the round's end (and passed the player-replaceable
	// quota if enabled).
	singleRounds []bool
	singleValue  Value
}

var _ sim.Machine = (*ProxcastMachine)(nil)

// ProxcastConfig collects the constructor parameters of a Proxcast
// party.
type ProxcastConfig struct {
	N, T int
	// Slots is s; the protocol runs s-1 rounds.
	Slots int
	// Self is this party's ID; Dealer the sender's.
	Self, Dealer sim.PartyID
	// Input is the dealer's value (ignored on other parties).
	Input Value
	// DealerPK verifies dealer signatures; DealerSK must be set on the
	// dealer's machine only.
	DealerPK *sig.PublicKey
	DealerSK *sig.SecretKey
	// PlayerReplaceable enables the n-t forwarding quota (t < n/2).
	PlayerReplaceable bool
}

// NewProxcastMachine builds one party's Proxcast machine.
func NewProxcastMachine(cfg ProxcastConfig) *ProxcastMachine {
	return &ProxcastMachine{
		n:            cfg.N,
		t:            cfg.T,
		s:            cfg.Slots,
		self:         cfg.Self,
		dealer:       cfg.Dealer,
		input:        cfg.Input,
		dealerPK:     cfg.DealerPK,
		dealerSK:     cfg.DealerSK,
		replayable:   cfg.PlayerReplaceable,
		singleRounds: make([]bool, cfg.Slots), // indexed by round, 1..s-1
	}
}

// Rounds returns the protocol's round budget, s-1.
func (m *ProxcastMachine) Rounds() int { return ProxcastRounds(m.s) }

// Start implements sim.Machine: only the dealer speaks in round 1.
func (m *ProxcastMachine) Start() []sim.Send {
	if m.self != m.dealer || m.dealerSK == nil {
		return nil
	}
	pair := ProxcastPair{Z: m.input, Sig: sig.Sign(m.dealerSK, ProxcastMessage(m.input))}
	m.absorbPair(pair)
	return sim.BroadcastSend(ProxcastSet{Pairs: []ProxcastPair{pair}})
}

// Deliver implements sim.Machine.
func (m *ProxcastMachine) Deliver(round int, in []sim.Message) []sim.Send {
	if round > m.Rounds() {
		return nil
	}
	m.round = round

	// forwarders counts, per pair, the distinct senders who forwarded it
	// this round (for the player-replaceable quota).
	forwarders := make(map[ProxcastPair]map[sim.PartyID]bool)
	for _, msg := range in {
		p, ok := msg.Payload.(ProxcastSet)
		if !ok {
			continue
		}
		for _, pair := range p.Pairs {
			if !sig.Ver(m.dealerPK, ProxcastMessage(pair.Z), pair.Sig) {
				continue
			}
			m.absorbPair(pair)
			fw := forwarders[pair]
			if fw == nil {
				fw = make(map[sim.PartyID]bool)
				forwarders[pair] = fw
			}
			fw[msg.From] = true
		}
	}

	// Record the singleton status at this round's end.
	if len(m.set) == 1 {
		quotaOK := true
		if m.replayable && round > 1 {
			quotaOK = quorum.Reached(len(forwarders[m.set[0]]), m.n, m.t)
		}
		if quotaOK {
			m.singleRounds[round] = true
			m.singleValue = m.set[0].Z
		}
	}

	if round == m.Rounds() {
		return nil
	}
	// Re-send the current set (two pairs suffice to prove equivocation).
	if len(m.set) == 0 {
		return nil
	}
	pairs := make([]ProxcastPair, len(m.set))
	copy(pairs, m.set)
	return sim.BroadcastSend(ProxcastSet{Pairs: pairs})
}

// Output implements sim.Machine: grade g requires 2g+1-b consecutive
// singleton round-ends (b = s mod 2).
func (m *ProxcastMachine) Output() (any, bool) {
	if m.round < m.Rounds() {
		return nil, false
	}
	b := m.s % 2
	best := 0 // longest run of singleton round-ends
	run := 0
	for r := 1; r <= m.Rounds(); r++ {
		if m.singleRounds[r] {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	g := (best - 1 + b) / 2
	if best == 0 || g < 0 {
		return Result{Value: 0, Grade: 0}, true
	}
	if max := MaxGrade(m.s); g > max {
		g = max
	}
	if g == 0 && b == 1 {
		// Odd s: the grade-0 slot carries no value commitment.
		return Result{Value: 0, Grade: 0}, true
	}
	return Result{Value: m.singleValue, Grade: g}, true
}

// absorbPair adds a valid dealer-signed pair to the set, keeping at most
// two distinct pairs.
func (m *ProxcastMachine) absorbPair(pair ProxcastPair) {
	for _, p := range m.set {
		if p == pair {
			return
		}
	}
	if len(m.set) < 2 {
		m.set = append(m.set, pair)
	}
}
