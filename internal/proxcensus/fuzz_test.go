package proxcensus

import (
	"testing"
)

// FuzzExpandStep hammers the expansion rule with arbitrary echo soups:
// the output grade must stay inside the target range, and the result
// must be insensitive to echo order (a Byzantine sender cannot gain
// anything by reordering deliveries).
func FuzzExpandStep(f *testing.F) {
	f.Add(4, 1, 1, []byte{0, 0, 0, 0, 1, 0, 2, 1, 3, 1})
	f.Add(7, 2, 2, []byte{0, 4, 1, 3, 2, 2, 3, 1, 4, 0})
	f.Add(10, 3, 3, []byte{9, 9, 8, 8, 7, 7})

	f.Fuzz(func(t *testing.T, nRaw, tRaw, rounds int, raw []byte) {
		abs := func(v int) int {
			if v < 0 {
				if v == -v { // MinInt
					return 0
				}
				return -v
			}
			return v
		}
		n := abs(nRaw)%29 + 4
		tc := abs(tRaw) % ((n-1)/3 + 1)
		r := abs(rounds)%4 + 1
		s := ExpandSlots(r - 1)
		maxG := MaxGrade(s)

		echoes := make([]Echo, 0, len(raw)/2)
		for i := 0; i+1 < len(raw) && len(echoes) < 2*n; i += 2 {
			echoes = append(echoes, Echo{
				From: int(raw[i]) % (n + 2), // includes duplicate senders
				Z:    int(raw[i]) % 3,
				H:    int(raw[i+1])%(maxG+2) - 1, // includes out-of-range grades
			})
		}

		out := ExpandStep(n, tc, s, echoes)
		if out.Grade < 0 || out.Grade > MaxGrade(2*s-1) {
			t.Fatalf("grade %d out of range for target slots %d", out.Grade, 2*s-1)
		}

		// Order insensitivity: reversing the echo list must not change
		// the result (first-echo-per-sender dedup is by sender, and
		// reversal changes which duplicate wins — so compare against a
		// deduped baseline instead of the raw reversal).
		seen := map[int]bool{}
		deduped := make([]Echo, 0, len(echoes))
		for _, e := range echoes {
			if seen[e.From] {
				continue
			}
			seen[e.From] = true
			deduped = append(deduped, e)
		}
		reversed := make([]Echo, len(deduped))
		for i, e := range deduped {
			reversed[len(deduped)-1-i] = e
		}
		if got := ExpandStep(n, tc, s, reversed); got != ExpandStep(n, tc, s, deduped) {
			t.Fatalf("order sensitivity: %v vs %v", got, ExpandStep(n, tc, s, deduped))
		}
	})
}
