package proxcensus_test

import (
	"fmt"
	"math/rand"
	"testing"

	"proxcensus/internal/adversary"
	"proxcensus/internal/conformance"
	"proxcensus/internal/crypto/threshsig"
	"proxcensus/internal/proxcensus"
	"proxcensus/internal/sim"
)

// TestExpandMachineExhaustiveTwoRounds model-checks the 2-round
// expansion (Prox_5, n=4, t=1) exhaustively: every honest input vector
// crossed with every per-round, per-recipient adversary message choice
// from the valid payload palettes (round 1 echoes Prox_2 pairs, round 2
// Prox_3 pairs). The enumeration lives in the conformance explorer; the
// run count here is a regression anchor — if it moves, the palette
// shape or enumeration changed.
func TestExpandMachineExhaustiveTwoRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check")
	}
	tg, sp := conformance.ExpandTarget(4, 1, 2)
	ex := &conformance.Explorer{Target: tg, Space: sp, Oracles: conformance.ProxOracles()}
	runs, violations, err := ex.Exhaustive(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v.String())
	}
	if want := 8 * 27 * 125; runs != want {
		t.Fatalf("explored %d executions, want %d", runs, want)
	}
}

// TestCrossFamilySoak randomizes protocol family, size, rounds, inputs
// and adversary over many seeds and checks Definition 2's invariants on
// every run — the broad net behind the targeted tests.
func TestCrossFamilySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const iterations = 400
	var seedBase [threshsig.Size]byte
	seedBase[0] = 0x99
	for it := 0; it < iterations; it++ {
		rng := rand.New(rand.NewSource(int64(it)))
		family := it % 3
		var n, tc, rounds, slots int
		switch family {
		case 0: // expand, t < n/3
			tc = rng.Intn(3) + 1
			n = 3*tc + 1 + rng.Intn(3)
			rounds = rng.Intn(4) + 1
			slots = proxcensus.ExpandSlots(rounds)
		case 1: // linear, t < n/2
			tc = rng.Intn(3) + 1
			n = 2*tc + 1 + rng.Intn(3)
			rounds = rng.Intn(4) + 2
			slots = proxcensus.LinearSlots(rounds)
		default: // quadratic, t < n/2
			tc = rng.Intn(2) + 1
			n = 2*tc + 1 + rng.Intn(2)
			rounds = rng.Intn(3) + 3
			slots = proxcensus.QuadSlots(rounds)
		}
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Intn(2)
		}

		pk, sks, err := threshsig.Deal(n, n-tc, seedBase)
		if err != nil {
			t.Fatal(err)
		}
		machines := make([]sim.Machine, n)
		for i := 0; i < n; i++ {
			switch family {
			case 0:
				machines[i] = proxcensus.NewExpandMachine(n, tc, rounds, inputs[i])
			case 1:
				machines[i] = proxcensus.NewLinearMachine(n, tc, rounds, inputs[i], pk, sks[i])
			default:
				machines[i] = proxcensus.NewQuadMachine(n, tc, rounds, inputs[i], pk, sks[i])
			}
		}

		var adv sim.Adversary
		switch rng.Intn(4) {
		case 0:
			adv = sim.Passive{}
		case 1:
			adv = &adversary.Crash{Victims: adversary.FirstT(tc)}
		case 2:
			adv = &adversary.LateCrash{Victims: adversary.FirstT(tc), When: rng.Intn(rounds) + 1}
		default:
			if family == 0 {
				adv = &adversary.Random{Victims: adversary.FirstT(tc), Gen: randomEchoGen}
			} else {
				adv = &adversary.Random{Victims: adversary.FirstT(tc), Gen: linearQuadGarbageGen(rounds, sks)}
			}
		}

		res, err := sim.Run(sim.Config{N: n, T: tc, Rounds: rounds, Seed: int64(it * 7)}, machines, adv)
		if err != nil {
			t.Fatalf("iter %d (family=%d n=%d t=%d r=%d): %v", it, family, n, tc, rounds, err)
		}
		results := make([]proxcensus.Result, 0, n)
		for _, o := range res.Outputs {
			results = append(results, o.(proxcensus.Result))
		}
		label := fmt.Sprintf("iter %d family=%d n=%d t=%d r=%d adv=%s inputs=%v",
			it, family, n, tc, rounds, adv.Name(), inputs)
		if err := proxcensus.CheckConsistency(slots, results); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		allSame := true
		for _, v := range inputs[tc:] {
			if v != inputs[tc] {
				allSame = false
				break
			}
		}
		if allSame && res.Metrics.Corruptions == tc {
			// Only pre-agreement among the *actual* honest set is
			// protected; with static FirstT corruption that set is
			// inputs[tc:].
			if err := proxcensus.CheckValidity(slots, inputs[tc], results); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
	}
}

// linearQuadGarbageGen floods payloads valid for both signature-based
// families.
func linearQuadGarbageGen(rounds int, sks []*threshsig.SecretKey) adversary.PayloadGen {
	return func(rng *rand.Rand, round int, from, to sim.PartyID) sim.Payload {
		sk := sks[from]
		v := rng.Intn(2)
		j := rng.Intn(rounds) + 1
		switch rng.Intn(6) {
		case 0:
			return proxcensus.LinearVote{V: v, Share: threshsig.SignShare(sk, proxcensus.LinearSigmaMessage(v))}
		case 1:
			return proxcensus.LinearOmegaShare{V: v, Share: threshsig.SignShare(sk, proxcensus.LinearOmegaMessage(v))}
		case 2:
			return proxcensus.QuadVote{V: v, Share: threshsig.SignShare(sk, proxcensus.QuadMessage(v, 1))}
		case 3:
			return proxcensus.QuadOmegaShare{V: v, J: j, Share: threshsig.SignShare(sk, proxcensus.QuadMessage(v, j))}
		case 4:
			var junk threshsig.Signature
			junk[0] = byte(rng.Intn(256))
			return proxcensus.QuadSig{V: v, J: j, Sig: junk}
		default:
			return nil
		}
	}
}
