package proxcensus

import (
	"fmt"
	"sort"
	"strings"
)

// RenderSlotLine draws the paper's Fig. 1 picture for a binary-domain
// execution: the s slots as a line from (0,G) on the left to (1,G) on
// the right, with the number of honest parties occupying each slot.
// For wide lines (large s) only the occupied region plus one slot of
// context is drawn. Returns an error if any result is out of range or
// non-binary.
//
//	slot    (0,2) (0,1) (-,0) (1,1) (1,2)
//	count     .     3     2     .     .
//
// The adjacency guarantee of Definition 2 means at most two neighbouring
// counts are ever non-zero for honest outputs.
func RenderSlotLine(s int, results []Result) (string, error) {
	counts := make(map[int]int, len(results))
	for i, r := range results {
		idx, err := SlotIndex(s, r)
		if err != nil {
			return "", fmt.Errorf("party %d: %w", i, err)
		}
		counts[idx]++
	}

	lo, hi := 0, s-1
	if s > 11 && len(counts) > 0 {
		occupied := make([]int, 0, len(counts))
		//lint:ordered keys sorted below
		for idx := range counts {
			occupied = append(occupied, idx)
		}
		sort.Ints(occupied)
		lo = max(0, occupied[0]-1)
		hi = min(s-1, occupied[len(occupied)-1]+1)
	}

	var labels, tallies []string
	if lo > 0 {
		labels = append(labels, "...")
		tallies = append(tallies, "   ")
	}
	g := MaxGrade(s)
	for idx := lo; idx <= hi; idx++ {
		labels = append(labels, slotLabel(s, g, idx))
		c := counts[idx]
		if c == 0 {
			tallies = append(tallies, center(".", len(labels[len(labels)-1])))
			continue
		}
		tallies = append(tallies, center(fmt.Sprint(c), len(labels[len(labels)-1])))
	}
	if hi < s-1 {
		labels = append(labels, "...")
		tallies = append(tallies, "   ")
	}
	return "slot   " + strings.Join(labels, " ") + "\ncount  " + strings.Join(tallies, " "), nil
}

// slotLabel names slot idx on the line.
func slotLabel(s, g, idx int) string {
	mid := g
	switch {
	case s%2 == 1 && idx == mid:
		return "(-,0)"
	case idx <= mid:
		return fmt.Sprintf("(0,%d)", g-idx)
	default:
		return fmt.Sprintf("(1,%d)", idx-(s-1-g))
	}
}

// center pads text to width, centred.
func center(text string, width int) string {
	if len(text) >= width {
		return text
	}
	left := (width - len(text)) / 2
	return strings.Repeat(" ", left) + text + strings.Repeat(" ", width-len(text)-left)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
