package proxcensus

import (
	"sort"

	"proxcensus/internal/quorum"
	"proxcensus/internal/sim"
)

// EchoPayload is the (z, h) pair exchanged by the t < n/3 expansion
// protocol (Section 3.3, protocol Prox_{2s-1}). It is unauthenticated —
// the protocol is perfectly secure and uses no signatures.
type EchoPayload struct {
	// Z is the sender's current Proxcensus value.
	Z Value
	// H is the sender's current grade.
	H int
}

var _ sim.Payload = EchoPayload{}

// SigCount implements sim.Payload.
func (EchoPayload) SigCount() int { return 0 }

// ByteSize implements sim.Payload: two varint-ish words.
func (EchoPayload) ByteSize() int { return 16 }

// Echo is one received (z, h) pair attributed to its sender.
type Echo struct {
	From sim.PartyID
	Z    Value
	H    int
}

// expandScratch pools the tally tables of ExpandStep across rounds so
// a long-lived ExpandMachine re-allocates nothing per step. Inner
// per-grade maps are recycled through a freelist because distinct
// values (Byzantine senders can fabricate any) each need one.
type expandScratch struct {
	seen      map[sim.PartyID]bool
	count     map[Value]map[int]int // value -> grade -> count
	free      []map[int]int
	values    []Value
	windowSet map[int]bool
	windows   []int
}

func newExpandScratch() *expandScratch {
	return &expandScratch{
		seen:      make(map[sim.PartyID]bool),
		count:     make(map[Value]map[int]int),
		windowSet: make(map[int]bool),
	}
}

// reset clears the tables for the next step, returning inner maps to
// the freelist.
//
//lint:hotpath
func (sc *expandScratch) reset() {
	clear(sc.seen)
	//lint:ordered freelist recycling; the maps are cleared, order is irrelevant
	for _, c := range sc.count {
		clear(c)
		sc.free = append(sc.free, c)
	}
	clear(sc.count)
	sc.values = sc.values[:0]
}

// inner returns the per-grade tally map for value z, recycling freed
// maps before allocating.
//
//lint:hotpath
func (sc *expandScratch) inner(z Value) map[int]int {
	c := sc.count[z]
	if c == nil {
		if k := len(sc.free); k > 0 {
			c, sc.free = sc.free[k-1], sc.free[:k-1]
		} else {
			//lint:hotpath freelist miss: one map per distinct value, recycled across rounds
			c = make(map[int]int, 4)
		}
		sc.count[z] = c
	}
	return c
}

// ExpandStep is the pure output-determination rule of protocol
// Prox_{2s-1} (Section 3.3): given each party's echoed Prox_s output,
// it computes this party's Prox_{2s-1} output. s is the *source* slot
// count; echoes out of the source grade range are ignored, as are all
// but the first echo per sender.
//
// The rule scans two consecutive source slots holding n-t echoes and
// grades by which of the two holds n-2t echoes, preferring the slot
// closer to the extreme ("in case of a tie, the upper slot is chosen").
func ExpandStep(n, t, s int, echoes []Echo) Result {
	return expandStep(n, t, s, echoes, newExpandScratch())
}

// expandStep is ExpandStep with caller-owned scratch tables.
//
//lint:hotpath
func expandStep(n, t, s int, echoes []Echo, sc *expandScratch) Result {
	maxG := MaxGrade(s)
	b := s % 2

	// Tally per-sender first echoes. Counts are sparse: the one-shot
	// protocol reaches source grade ranges of 2^κ, so dense per-grade
	// arrays (and dense grade loops) are out of the question; honest
	// parties occupy at most two adjacent grades, so only the grades
	// actually present can matter.
	sc.reset()
	seen := sc.seen
	count := sc.count
	zeroGrade := 0 // |S_0| = echoes with h == 0 regardless of value
	for _, e := range echoes {
		if seen[e.From] || e.H < 0 || e.H > maxG {
			continue
		}
		seen[e.From] = true
		if e.H == 0 {
			zeroGrade++
		}
		sc.inner(e.Z)[e.H]++
	}

	// Deterministic value scan order keeps Byzantine tie-breaking stable.
	values := sc.sortedValues()

	out := Result{Value: 0, Grade: 0}
	// Odd source (b=1): the grade-0 slot is shared by all values, so the
	// first expanded grade pools S_0 with S_{z,1}.
	if b == 1 {
		for _, z := range values {
			c := count[z]
			if quorum.Reached(zeroGrade+c[1], n, t) && quorum.SuperMajority(c[1], n, t) {
				out = Result{Value: z, Grade: 1}
				break
			}
		}
	}
	// Scan only the candidate windows [g, g+1] that contain an observed
	// grade — an empty window cannot accumulate n-t echoes. Ascending
	// (g, z) order with strict improvement replicates the dense loop's
	// tie-breaking exactly.
	for _, z := range values {
		c := count[z]
		for _, g := range sc.candidateWindows(c, b, maxG) {
			if !quorum.Reached(c[g]+c[g+1], n, t) {
				continue
			}
			switch {
			case quorum.SuperMajority(c[g+1], n, t):
				if upper := 2*g + 2 - b; upper > out.Grade {
					out = Result{Value: z, Grade: upper}
				}
			case quorum.SuperMajority(c[g], n, t):
				if lower := 2*g + 1 - b; lower > out.Grade {
					out = Result{Value: z, Grade: lower}
				}
			}
		}
	}
	for _, z := range values {
		if quorum.Reached(count[z][maxG], n, t) {
			top := 2*maxG + 1 - b // = MaxGrade(2s-1)
			if top > out.Grade {
				out = Result{Value: z, Grade: top}
			}
		}
	}
	return out
}

// candidateWindows returns, in ascending order, the window starts g in
// [b, maxG-1] such that window [g, g+1] contains an observed grade. The
// result aliases the scratch buffer and is valid until the next call.
//
//lint:hotpath
func (sc *expandScratch) candidateWindows(c map[int]int, b, maxG int) []int {
	clear(sc.windowSet)
	//lint:ordered set accumulation; the result is sorted before return
	for h := range c {
		for _, g := range [2]int{h - 1, h} {
			if g >= b && g <= maxG-1 {
				sc.windowSet[g] = true
			}
		}
	}
	out := sc.windows[:0]
	//lint:ordered keys sorted below
	for g := range sc.windowSet {
		out = append(out, g)
	}
	sort.Ints(out)
	sc.windows = out
	return out
}

// sortedValues returns the tallied values in ascending order, reusing
// the scratch value buffer.
//
//lint:hotpath
func (sc *expandScratch) sortedValues() []Value {
	values := sc.values[:0]
	//lint:ordered keys sorted below
	for z := range sc.count {
		values = append(values, z)
	}
	sort.Ints(values)
	sc.values = values
	return values
}

// ExpandSlots returns the slot count of Prox_{2^r+1} built by r
// expansion rounds from the parties' raw inputs (Prox_2).
func ExpandSlots(rounds int) int { return 1<<rounds + 1 }

// ExpandMachine runs the r-round iterated expansion protocol achieving
// Prox_{2^r+1} for t < n/3 (Corollary 1). Round k echoes the party's
// current Prox_{2^{k-1}+1} pair and applies ExpandStep. The parties' raw
// inputs serve as the base case Prox_2 with grade 0.
type ExpandMachine struct {
	n, t, rounds int
	cur          Result
	sCur         int // slot count of the pair currently held
	round        int

	// Per-round scratch, pooled across the machine's lifetime: echo
	// decoding buffer and the ExpandStep tally tables.
	echoes  []Echo
	scratch *expandScratch
}

var _ sim.Machine = (*ExpandMachine)(nil)

// NewExpandMachine builds one party's machine. rounds >= 0; with
// rounds = 0 the machine immediately outputs (input, 0) in Prox_2.
func NewExpandMachine(n, t, rounds int, input Value) *ExpandMachine {
	return &ExpandMachine{
		n:       n,
		t:       t,
		rounds:  rounds,
		cur:     Result{Value: input, Grade: 0},
		sCur:    2,
		scratch: newExpandScratch(),
	}
}

// Rounds returns the protocol's round budget.
func (m *ExpandMachine) Rounds() int { return m.rounds }

// Slots returns the slot count of the final output.
func (m *ExpandMachine) Slots() int { return ExpandSlots(m.rounds) }

// Start implements sim.Machine.
func (m *ExpandMachine) Start() []sim.Send {
	if m.rounds == 0 {
		return nil
	}
	return sim.BroadcastSend(EchoPayload{Z: m.cur.Value, H: m.cur.Grade})
}

// Deliver implements sim.Machine.
func (m *ExpandMachine) Deliver(round int, in []sim.Message) []sim.Send {
	if round > m.rounds {
		return nil
	}
	echoes := m.echoes[:0]
	for _, msg := range in {
		p, ok := msg.Payload.(EchoPayload)
		if !ok {
			continue
		}
		echoes = append(echoes, Echo{From: msg.From, Z: p.Z, H: p.H})
	}
	m.echoes = echoes
	m.cur = expandStep(m.n, m.t, m.sCur, echoes, m.scratch)
	m.sCur = 2*m.sCur - 1
	m.round = round
	if round == m.rounds {
		return nil
	}
	return sim.BroadcastSend(EchoPayload{Z: m.cur.Value, H: m.cur.Grade})
}

// Output implements sim.Machine.
func (m *ExpandMachine) Output() (any, bool) {
	if m.round < m.rounds {
		return nil, false
	}
	return m.cur, true
}
