package proxcensus

import (
	"sort"

	"proxcensus/internal/sim"
)

// EchoPayload is the (z, h) pair exchanged by the t < n/3 expansion
// protocol (Section 3.3, protocol Prox_{2s-1}). It is unauthenticated —
// the protocol is perfectly secure and uses no signatures.
type EchoPayload struct {
	// Z is the sender's current Proxcensus value.
	Z Value
	// H is the sender's current grade.
	H int
}

var _ sim.Payload = EchoPayload{}

// SigCount implements sim.Payload.
func (EchoPayload) SigCount() int { return 0 }

// ByteSize implements sim.Payload: two varint-ish words.
func (EchoPayload) ByteSize() int { return 16 }

// Echo is one received (z, h) pair attributed to its sender.
type Echo struct {
	From sim.PartyID
	Z    Value
	H    int
}

// ExpandStep is the pure output-determination rule of protocol
// Prox_{2s-1} (Section 3.3): given each party's echoed Prox_s output,
// it computes this party's Prox_{2s-1} output. s is the *source* slot
// count; echoes out of the source grade range are ignored, as are all
// but the first echo per sender.
//
// The rule scans two consecutive source slots holding n-t echoes and
// grades by which of the two holds n-2t echoes, preferring the slot
// closer to the extreme ("in case of a tie, the upper slot is chosen").
func ExpandStep(n, t, s int, echoes []Echo) Result {
	maxG := MaxGrade(s)
	b := s % 2

	// Tally per-sender first echoes. Counts are sparse: the one-shot
	// protocol reaches source grade ranges of 2^κ, so dense per-grade
	// arrays (and dense grade loops) are out of the question; honest
	// parties occupy at most two adjacent grades, so only the grades
	// actually present can matter.
	seen := make(map[sim.PartyID]bool, len(echoes))
	count := make(map[Value]map[int]int) // value -> grade -> count
	zeroGrade := 0                       // |S_0| = echoes with h == 0 regardless of value
	for _, e := range echoes {
		if seen[e.From] || e.H < 0 || e.H > maxG {
			continue
		}
		seen[e.From] = true
		if e.H == 0 {
			zeroGrade++
		}
		c := count[e.Z]
		if c == nil {
			c = make(map[int]int, 4)
			count[e.Z] = c
		}
		c[e.H]++
	}

	// Deterministic value scan order keeps Byzantine tie-breaking stable.
	values := sortedValues(count)

	out := Result{Value: 0, Grade: 0}
	// Odd source (b=1): the grade-0 slot is shared by all values, so the
	// first expanded grade pools S_0 with S_{z,1}.
	if b == 1 {
		for _, z := range values {
			c := count[z]
			if zeroGrade+c[1] >= n-t && c[1] >= n-2*t {
				out = Result{Value: z, Grade: 1}
				break
			}
		}
	}
	// Scan only the candidate windows [g, g+1] that contain an observed
	// grade — an empty window cannot accumulate n-t echoes. Ascending
	// (g, z) order with strict improvement replicates the dense loop's
	// tie-breaking exactly.
	for _, z := range values {
		c := count[z]
		for _, g := range candidateWindows(c, b, maxG) {
			if c[g]+c[g+1] < n-t {
				continue
			}
			switch {
			case c[g+1] >= n-2*t:
				if upper := 2*g + 2 - b; upper > out.Grade {
					out = Result{Value: z, Grade: upper}
				}
			case c[g] >= n-2*t:
				if lower := 2*g + 1 - b; lower > out.Grade {
					out = Result{Value: z, Grade: lower}
				}
			}
		}
	}
	for _, z := range values {
		if count[z][maxG] >= n-t {
			top := 2*maxG + 1 - b // = MaxGrade(2s-1)
			if top > out.Grade {
				out = Result{Value: z, Grade: top}
			}
		}
	}
	return out
}

// candidateWindows returns, in ascending order, the window starts g in
// [b, maxG-1] such that window [g, g+1] contains an observed grade.
func candidateWindows(c map[int]int, b, maxG int) []int {
	set := make(map[int]bool, 2*len(c))
	//lint:ordered set accumulation; the result is sorted before return
	for h := range c {
		for _, g := range [2]int{h - 1, h} {
			if g >= b && g <= maxG-1 {
				set[g] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	//lint:ordered keys sorted below
	for g := range set {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// sortedValues returns the tallied values in ascending order.
func sortedValues(count map[Value]map[int]int) []Value {
	values := make([]Value, 0, len(count))
	//lint:ordered keys sorted below
	for z := range count {
		values = append(values, z)
	}
	sort.Ints(values)
	return values
}

// ExpandSlots returns the slot count of Prox_{2^r+1} built by r
// expansion rounds from the parties' raw inputs (Prox_2).
func ExpandSlots(rounds int) int { return 1<<rounds + 1 }

// ExpandMachine runs the r-round iterated expansion protocol achieving
// Prox_{2^r+1} for t < n/3 (Corollary 1). Round k echoes the party's
// current Prox_{2^{k-1}+1} pair and applies ExpandStep. The parties' raw
// inputs serve as the base case Prox_2 with grade 0.
type ExpandMachine struct {
	n, t, rounds int
	cur          Result
	sCur         int // slot count of the pair currently held
	round        int
}

var _ sim.Machine = (*ExpandMachine)(nil)

// NewExpandMachine builds one party's machine. rounds >= 0; with
// rounds = 0 the machine immediately outputs (input, 0) in Prox_2.
func NewExpandMachine(n, t, rounds int, input Value) *ExpandMachine {
	return &ExpandMachine{
		n:      n,
		t:      t,
		rounds: rounds,
		cur:    Result{Value: input, Grade: 0},
		sCur:   2,
	}
}

// Rounds returns the protocol's round budget.
func (m *ExpandMachine) Rounds() int { return m.rounds }

// Slots returns the slot count of the final output.
func (m *ExpandMachine) Slots() int { return ExpandSlots(m.rounds) }

// Start implements sim.Machine.
func (m *ExpandMachine) Start() []sim.Send {
	if m.rounds == 0 {
		return nil
	}
	return sim.BroadcastSend(EchoPayload{Z: m.cur.Value, H: m.cur.Grade})
}

// Deliver implements sim.Machine.
func (m *ExpandMachine) Deliver(round int, in []sim.Message) []sim.Send {
	if round > m.rounds {
		return nil
	}
	echoes := make([]Echo, 0, len(in))
	for _, msg := range in {
		p, ok := msg.Payload.(EchoPayload)
		if !ok {
			continue
		}
		echoes = append(echoes, Echo{From: msg.From, Z: p.Z, H: p.H})
	}
	m.cur = ExpandStep(m.n, m.t, m.sCur, echoes)
	m.sCur = 2*m.sCur - 1
	m.round = round
	if round == m.rounds {
		return nil
	}
	return sim.BroadcastSend(EchoPayload{Z: m.cur.Value, H: m.cur.Grade})
}

// Output implements sim.Machine.
func (m *ExpandMachine) Output() (any, bool) {
	if m.round < m.rounds {
		return nil, false
	}
	return m.cur, true
}
