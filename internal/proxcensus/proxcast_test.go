package proxcensus_test

import (
	"fmt"
	"testing"

	"proxcensus/internal/adversary"
	"proxcensus/internal/crypto/sig"
	"proxcensus/internal/proxcensus"
	"proxcensus/internal/sim"
)

func proxcastSeed() [sig.Size]byte {
	var s [sig.Size]byte
	s[0] = 0xd0
	return s
}

// runProxcast executes s-slot Proxcast with the given dealer behaviour.
func runProxcast(t *testing.T, n, tc, s int, dealer sim.PartyID, input int, adv sim.Adversary, pr bool) map[int]proxcensus.Result {
	t.Helper()
	pk, sk := sig.KeyGen(dealer, proxcastSeed())
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		cfg := proxcensus.ProxcastConfig{
			N: n, T: tc, Slots: s, Self: i, Dealer: dealer,
			Input: input, DealerPK: pk, PlayerReplaceable: pr,
		}
		if i == dealer {
			cfg.DealerSK = sk
		}
		machines[i] = proxcensus.NewProxcastMachine(cfg)
	}
	res, err := sim.Run(sim.Config{N: n, T: tc, Rounds: s - 1, Seed: 7}, machines, adv)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make(map[int]proxcensus.Result, len(res.Outputs))
	for p, o := range res.Outputs {
		out[p] = o.(proxcensus.Result)
	}
	return out
}

func TestProxcastHonestDealer(t *testing.T) {
	for _, s := range []int{2, 3, 4, 5, 6, 9} {
		for _, input := range []int{0, 1} {
			t.Run(fmt.Sprintf("s=%d/x=%d", s, input), func(t *testing.T) {
				got := runProxcast(t, 5, 4, s, 2, input, sim.Passive{}, false)
				for p, r := range got {
					want := proxcensus.Result{Value: input, Grade: proxcensus.MaxGrade(s)}
					if r != want {
						t.Errorf("party %d: %v, want %v", p, r, want)
					}
				}
			})
		}
	}
}

func TestProxcastHonestDealerWithByzantinePeers(t *testing.T) {
	// t < n with t = n-1: every party except the dealer and one receiver
	// may misbehave; validity must still hold for the honest receiver.
	const n, tc, s, dealer = 5, 3, 5, 0
	pk, _ := sig.KeyGen(dealer, proxcastSeed())
	_ = pk
	adv := &adversary.Crash{Victims: []sim.PartyID{1, 2, 3}}
	got := runProxcast(t, n, tc, s, dealer, 1, adv, false)
	for p, r := range got {
		want := proxcensus.Result{Value: 1, Grade: proxcensus.MaxGrade(s)}
		if r != want {
			t.Errorf("party %d: %v, want %v", p, r, want)
		}
	}
}

// equivocatingDealer corrupts the dealer and sends signature-valid but
// contradictory values to the two halves of the network in round 1.
func equivocatingDealer(dealer sim.PartyID, sk *sig.SecretKey) sim.Adversary {
	return &adversary.Func{
		StrategyName: "equivocating-dealer",
		InitFunc:     func(env *sim.Env) { env.Corrupt(dealer) },
		ActFunc: func(round int, _ []sim.Message, env *sim.Env) []sim.Message {
			if round != 1 {
				return nil
			}
			var msgs []sim.Message
			for to := 0; to < env.N(); to++ {
				v := 0
				if to >= env.N()/2 {
					v = 1
				}
				msgs = append(msgs, sim.Message{From: dealer, To: to, Payload: proxcensus.ProxcastSet{
					Pairs: []proxcensus.ProxcastPair{{Z: v, Sig: sig.Sign(sk, proxcensus.ProxcastMessage(v))}},
				}})
			}
			return msgs
		},
	}
}

func TestProxcastEquivocatingDealer(t *testing.T) {
	for _, s := range []int{3, 4, 5, 6, 8, 9} {
		t.Run(fmt.Sprintf("s=%d", s), func(t *testing.T) {
			const n, tc, dealer = 6, 1, 0
			_, sk := sig.KeyGen(dealer, proxcastSeed())
			got := runProxcast(t, n, tc, s, dealer, 0, equivocatingDealer(dealer, sk), false)
			honest := resultsOf(got)
			if err := proxcensus.CheckConsistency(s, honest); err != nil {
				t.Fatal(err)
			}
			// Everyone sees the contradiction by round 2, so no party can
			// sustain a singleton window of length 2g+1-b for g >= 1.
			for p, r := range got {
				if r.Grade > 1 {
					t.Errorf("party %d: grade %d under immediate equivocation", p, r.Grade)
				}
			}
		})
	}
}

// withholdingDealer sends the signed value only to one favourite in
// round 1; honest forwarding must lift everyone else to grade >= G-1.
func withholdingDealer(dealer sim.PartyID, favourite sim.PartyID, sk *sig.SecretKey) sim.Adversary {
	return &adversary.Func{
		StrategyName: "withholding-dealer",
		InitFunc:     func(env *sim.Env) { env.Corrupt(dealer) },
		ActFunc: func(round int, _ []sim.Message, env *sim.Env) []sim.Message {
			if round != 1 {
				return nil
			}
			return []sim.Message{{From: dealer, To: favourite, Payload: proxcensus.ProxcastSet{
				Pairs: []proxcensus.ProxcastPair{{Z: 1, Sig: sig.Sign(sk, proxcensus.ProxcastMessage(1))}},
			}}}
		},
	}
}

func TestProxcastWithholdingDealer(t *testing.T) {
	for _, s := range []int{3, 5, 7, 9} {
		t.Run(fmt.Sprintf("s=%d", s), func(t *testing.T) {
			const n, tc, dealer, fav = 5, 1, 0, 3
			_, sk := sig.KeyGen(dealer, proxcastSeed())
			got := runProxcast(t, n, tc, s, dealer, 0, withholdingDealer(dealer, fav, sk), false)
			honest := resultsOf(got)
			if err := proxcensus.CheckConsistency(s, honest); err != nil {
				t.Fatal(err)
			}
			g := proxcensus.MaxGrade(s)
			if r := got[fav]; r.Grade != g || r.Value != 1 {
				t.Errorf("favourite: %v, want (1,%d)", r, g)
			}
			for p, r := range got {
				if p == fav {
					continue
				}
				if r.Grade != g-1 {
					t.Errorf("party %d: grade %d, want %d via forwarding", p, r.Grade, g-1)
				}
				// For odd s the grade-0 slot carries no value commitment.
				if r.Grade >= 1 && r.Value != 1 {
					t.Errorf("party %d: value %d, want 1", p, r.Value)
				}
			}
		})
	}
}

// lateContradiction lets the run start clean and releases the second
// signature at a chosen round through a corrupted non-dealer.
func TestProxcastLateContradictionGrades(t *testing.T) {
	const n, tc, dealer, mole, s = 5, 2, 0, 1, 9
	_, sk := sig.KeyGen(dealer, proxcastSeed())
	for release := 2; release <= s-1; release++ {
		t.Run(fmt.Sprintf("release=%d", release), func(t *testing.T) {
			adv := &adversary.Func{
				StrategyName: "late-contradiction",
				InitFunc: func(env *sim.Env) {
					env.Corrupt(dealer)
					env.Corrupt(mole)
				},
				ActFunc: func(round int, _ []sim.Message, env *sim.Env) []sim.Message {
					var msgs []sim.Message
					if round == 1 {
						// Dealer behaves normally toward everyone.
						for to := 0; to < env.N(); to++ {
							msgs = append(msgs, sim.Message{From: dealer, To: to, Payload: proxcensus.ProxcastSet{
								Pairs: []proxcensus.ProxcastPair{{Z: 0, Sig: sig.Sign(sk, proxcensus.ProxcastMessage(0))}},
							}})
						}
					}
					if round == release {
						for to := 0; to < env.N(); to++ {
							msgs = append(msgs, sim.Message{From: mole, To: to, Payload: proxcensus.ProxcastSet{
								Pairs: []proxcensus.ProxcastPair{{Z: 1, Sig: sig.Sign(sk, proxcensus.ProxcastMessage(1))}},
							}})
						}
					}
					return msgs
				},
			}
			got := runProxcast(t, n, tc, s, dealer, 0, adv, false)
			honest := resultsOf(got)
			if err := proxcensus.CheckConsistency(s, honest); err != nil {
				t.Fatal(err)
			}
			// The singleton window is rounds 1..release-1 (length
			// release-1); with odd s grade = floor((release-1)/2).
			want := (release - 1) / 2
			for p, r := range got {
				if r.Grade != want {
					t.Errorf("party %d: grade %d, want %d (window %d)", p, r.Grade, want, release-1)
				}
				if want >= 1 && r.Value != 0 {
					t.Errorf("party %d: value %d, want 0", p, r.Value)
				}
			}
		})
	}
}

func TestProxcastPlayerReplaceableQuota(t *testing.T) {
	// With the n-t forwarding quota, a pair whispered to a single party
	// in round 2 does not extend that party's singleton window.
	const n, tc, dealer, fav, s = 5, 2, 0, 3, 5
	_, sk := sig.KeyGen(dealer, proxcastSeed())
	got := runProxcast(t, n, tc, s, dealer, 0, withholdingDealer(dealer, fav, sk), true)
	honest := resultsOf(got)
	if err := proxcensus.CheckConsistency(s, honest); err != nil {
		t.Fatal(err)
	}
	// Round 1 singleton still counts for the favourite (round 1 is the
	// dealer's own), but rounds 2+ only count once n-t parties forward —
	// which they do, since all 3 honest parties re-send their sets. The
	// favourite's round-2 window now needs n-t=3 forwarders of the pair:
	// only the favourite itself forwarded it in round 2, so the window
	// breaks and grades must drop below the non-replaceable run.
	basic := runProxcast(t, n, tc, s, dealer, 0, withholdingDealer(dealer, fav, sk), false)
	if got[fav].Grade >= basic[fav].Grade {
		t.Errorf("player-replaceable grade %d should be below basic grade %d", got[fav].Grade, basic[fav].Grade)
	}
}

func TestProxcastIgnoresForgedSignatures(t *testing.T) {
	const n, tc, dealer, s = 4, 1, 0, 5
	forger := &adversary.Func{
		StrategyName: "forger",
		InitFunc:     func(env *sim.Env) { env.Corrupt(1) },
		ActFunc: func(round int, _ []sim.Message, env *sim.Env) []sim.Message {
			var bad sig.Signature
			bad[3] = 0xee
			var msgs []sim.Message
			for to := 0; to < env.N(); to++ {
				msgs = append(msgs, sim.Message{From: 1, To: to, Payload: proxcensus.ProxcastSet{
					Pairs: []proxcensus.ProxcastPair{{Z: 1, Sig: bad}},
				}})
			}
			return msgs
		},
	}
	got := runProxcast(t, n, tc, s, dealer, 0, forger, false)
	for p, r := range got {
		want := proxcensus.Result{Value: 0, Grade: proxcensus.MaxGrade(s)}
		if r != want {
			t.Errorf("party %d: %v, want %v (forged pair must be ignored)", p, r, want)
		}
	}
}
