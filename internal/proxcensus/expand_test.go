package proxcensus

import (
	"testing"
	"testing/quick"
)

// mkEchoes builds an echo list from (z, h, count) triples, assigning
// fresh sender IDs.
func mkEchoes(triples ...[3]int) []Echo {
	var echoes []Echo
	next := 0
	for _, t := range triples {
		for i := 0; i < t[2]; i++ {
			echoes = append(echoes, Echo{From: next, Z: t[0], H: t[1]})
			next++
		}
	}
	return echoes
}

func TestMaxGrade(t *testing.T) {
	tests := []struct{ s, want int }{
		{2, 0}, {3, 1}, {4, 1}, {5, 2}, {9, 4}, {10, 4}, {15, 7}, {17, 8},
	}
	for _, tt := range tests {
		if got := MaxGrade(tt.s); got != tt.want {
			t.Errorf("MaxGrade(%d) = %d, want %d", tt.s, got, tt.want)
		}
	}
}

func TestSlotIndex(t *testing.T) {
	tests := []struct {
		s    int
		r    Result
		want int
	}{
		{9, Result{0, 4}, 0},
		{9, Result{0, 1}, 3},
		{9, Result{0, 0}, 4},
		{9, Result{1, 0}, 4}, // odd s: single shared middle slot
		{9, Result{1, 1}, 5},
		{9, Result{1, 4}, 8},
		{10, Result{0, 4}, 0},
		{10, Result{0, 0}, 4},
		{10, Result{1, 0}, 5}, // even s: two middle slots
		{10, Result{1, 4}, 9},
		{3, Result{0, 1}, 0},
		{3, Result{0, 0}, 1},
		{3, Result{1, 1}, 2},
	}
	for _, tt := range tests {
		got, err := SlotIndex(tt.s, tt.r)
		if err != nil {
			t.Errorf("SlotIndex(%d, %v): %v", tt.s, tt.r, err)
			continue
		}
		if got != tt.want {
			t.Errorf("SlotIndex(%d, %v) = %d, want %d", tt.s, tt.r, got, tt.want)
		}
	}
	if _, err := SlotIndex(9, Result{0, 5}); err == nil {
		t.Error("grade above MaxGrade must error")
	}
	if _, err := SlotIndex(9, Result{7, 2}); err == nil {
		t.Error("non-binary value must error")
	}
}

func TestExpandSlots(t *testing.T) {
	tests := []struct{ r, want int }{{0, 2}, {1, 3}, {2, 5}, {3, 9}, {4, 17}, {10, 1025}}
	for _, tt := range tests {
		if got := ExpandSlots(tt.r); got != tt.want {
			t.Errorf("ExpandSlots(%d) = %d, want %d", tt.r, got, tt.want)
		}
	}
}

// TestExpandStepBase checks the Prox_2 -> Prox_3 base step (n=4, t=1).
func TestExpandStepBase(t *testing.T) {
	const n, tc, s = 4, 1, 2
	tests := []struct {
		name   string
		echoes []Echo
		want   Result
	}{
		{"unanimous zero", mkEchoes([3]int{0, 0, 4}), Result{0, 1}},
		{"unanimous one", mkEchoes([3]int{1, 0, 4}), Result{1, 1}},
		{"n-t zeros", mkEchoes([3]int{0, 0, 3}, [3]int{1, 0, 1}), Result{0, 1}},
		{"n-t ones", mkEchoes([3]int{1, 0, 3}, [3]int{0, 0, 1}), Result{1, 1}},
		{"even split", mkEchoes([3]int{0, 0, 2}, [3]int{1, 0, 2}), Result{0, 0}},
		{"too few echoes", mkEchoes([3]int{0, 0, 2}), Result{0, 0}},
		{"multivalued n-t", mkEchoes([3]int{7, 0, 3}, [3]int{2, 0, 1}), Result{7, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExpandStep(n, tc, s, tt.echoes); got != tt.want {
				t.Errorf("ExpandStep = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestExpandStepFig2Odd reproduces the Prox_5 -> Prox_9 expansion of
// Fig. 2 (odd source, b=1, source grades 0..2 -> target grades 0..4)
// with n=4, t=1 (n-t=3, n-2t=2).
func TestExpandStepFig2Odd(t *testing.T) {
	const n, tc, s = 4, 1, 5
	tests := []struct {
		name   string
		echoes []Echo
		want   Result
	}{
		// Row (z, 4): n-t echoes on the extreme slot (z, 2).
		{"top grade", mkEchoes([3]int{1, 2, 3}, [3]int{0, 0, 1}), Result{1, 4}},
		// Row (z, 3): n-t across (z,1),(z,2) with n-2t at (z,2).
		{"grade 3", mkEchoes([3]int{1, 1, 1}, [3]int{1, 2, 2}, [3]int{0, 0, 1}), Result{1, 3}},
		// Row (z, 2): n-t across (z,1),(z,2) with n-2t only at (z,1).
		{"grade 2", mkEchoes([3]int{1, 1, 2}, [3]int{1, 2, 1}, [3]int{0, 0, 1}), Result{1, 2}},
		// Tie: n-2t at both (z,1) and (z,2) -> the upper branch wins.
		{"tie upper", mkEchoes([3]int{1, 1, 2}, [3]int{1, 2, 2}), Result{1, 3}},
		// Row (z, 1): n-t across the pooled zero slot and (z,1), with
		// n-2t at (z,1).
		{"grade 1 via zero pool", mkEchoes([3]int{1, 0, 2}, [3]int{1, 1, 2}), Result{1, 1}},
		{"grade 1 mixed-value zeros", mkEchoes([3]int{0, 0, 1}, [3]int{25, 0, 1}, [3]int{1, 1, 2}), Result{1, 1}},
		// Not enough weight anywhere: grade 0.
		{"scattered", mkEchoes([3]int{0, 1, 1}, [3]int{1, 1, 1}, [3]int{0, 0, 1}, [3]int{1, 0, 1}), Result{0, 0}},
		// Validity row: everyone on (0,2).
		{"unanimous", mkEchoes([3]int{0, 2, 4}), Result{0, 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExpandStep(n, tc, s, tt.echoes); got != tt.want {
				t.Errorf("ExpandStep = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestExpandStepFig2Even reproduces the Prox_4 -> Prox_7 expansion of
// Fig. 2 (even source, b=0, source grades 0..1 -> target grades 0..3).
func TestExpandStepFig2Even(t *testing.T) {
	const n, tc, s = 4, 1, 4
	tests := []struct {
		name   string
		echoes []Echo
		want   Result
	}{
		// n-t on the extreme (z,1): top grade 2G+1-b = 3.
		{"top grade", mkEchoes([3]int{1, 1, 3}, [3]int{0, 0, 1}), Result{1, 3}},
		// n-t across (z,0),(z,1), n-2t at (z,1): grade 2.
		{"grade 2", mkEchoes([3]int{1, 0, 1}, [3]int{1, 1, 2}, [3]int{0, 0, 1}), Result{1, 2}},
		// n-t across (z,0),(z,1), n-2t only at (z,0): grade 1.
		{"grade 1", mkEchoes([3]int{1, 0, 2}, [3]int{1, 1, 1}, [3]int{0, 0, 1}), Result{1, 1}},
		// Even source: grade-0 slots are value-specific; mixed-value
		// zeros do not pool (odd-style pooling would have lifted this to
		// a window with 3 echoes and n-2t on the upper slot).
		{"no pooling", mkEchoes([3]int{0, 0, 1}, [3]int{1, 0, 2}, [3]int{1, 1, 1}), Result{1, 1}},
		{"grade 0", mkEchoes([3]int{0, 0, 2}, [3]int{1, 0, 2}), Result{0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExpandStep(n, tc, s, tt.echoes); got != tt.want {
				t.Errorf("ExpandStep = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExpandStepIgnoresGarbage(t *testing.T) {
	const n, tc, s = 4, 1, 3
	echoes := mkEchoes([3]int{1, 1, 3})
	// Duplicate sender: second echo from sender 0 must be dropped.
	echoes = append(echoes, Echo{From: 0, Z: 0, H: 1})
	// Out-of-range grades for the source Prox_3 (maxG = 1).
	echoes = append(echoes, Echo{From: 90, Z: 0, H: 2}, Echo{From: 91, Z: 0, H: -1})
	got := ExpandStep(n, tc, s, echoes)
	if want := (Result{1, 2}); got != want {
		t.Errorf("ExpandStep = %v, want %v", got, want)
	}
}

// TestExpandStepValidityInduction: if all n-t honest parties echo the
// same pair (v, G_src) and the t corrupted echo arbitrary pairs, the
// output is (v, G_target).
func TestExpandStepValidityInduction(t *testing.T) {
	cases := []struct{ n, tc int }{{4, 1}, {7, 2}, {10, 3}, {13, 4}}
	for _, c := range cases {
		for r := 1; r <= 4; r++ {
			s := ExpandSlots(r - 1) // source slots
			echoes := mkEchoes([3]int{1, MaxGrade(s), c.n - c.tc})
			// Corrupted senders echo maximally confusing pairs.
			for i := 0; i < c.tc; i++ {
				echoes = append(echoes, Echo{From: 1000 + i, Z: 0, H: MaxGrade(s)})
			}
			got := ExpandStep(c.n, c.tc, s, echoes)
			want := Result{1, MaxGrade(2*s - 1)}
			if got != want {
				t.Errorf("n=%d t=%d s=%d: got %v, want %v", c.n, c.tc, s, got, want)
			}
		}
	}
}

// TestQuickExpandStepGradeRange: outputs always have grades within the
// target range, for arbitrary echo soups.
func TestQuickExpandStepGradeRange(t *testing.T) {
	f := func(raw []int16, nSeed, rSeed uint8) bool {
		n := int(nSeed%10)*3 + 4 // 4..31
		tc := (n - 1) / 3
		rounds := int(rSeed%3) + 1
		s := ExpandSlots(rounds - 1)
		echoes := make([]Echo, 0, len(raw)/2)
		for i := 0; i+1 < len(raw) && len(echoes) < n; i += 2 {
			echoes = append(echoes, Echo{From: len(echoes), Z: int(raw[i]), H: int(raw[i+1])})
		}
		out := ExpandStep(n, tc, s, echoes)
		return out.Grade >= 0 && out.Grade <= MaxGrade(2*s-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
