// Command proxserve runs the persistent consensus service: a daemon
// hosting many concurrent BA instances over shared TCP connections,
// accepting proposals on a line-oriented client API and streaming
// decisions back (see internal/service for the protocol).
//
//	proxserve -n 4 -t 1 -listen 127.0.0.1:7000
//	proxserve -n 7 -t 2 -kappa 6 -max-active 128 -batch 16 -duration 60s
//
// The periodic report line tracks sustained throughput:
//
//	proxserve: decided=812 (270.7/s) shed=3 active=12 pending=5 instances=204
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"proxcensus/internal/ba"
	"proxcensus/internal/quorum"
	"proxcensus/internal/service"
	"proxcensus/internal/transport"
)

func main() {
	var (
		n          = flag.Int("n", 4, "number of parties per BA instance")
		t          = flag.Int("t", 1, "corruption budget per instance (needs 3t < n)")
		kappa      = flag.Int("kappa", service.DefaultKappa, "per-instance security parameter")
		seed       = flag.Int64("seed", 1, "setup seed (keys, coins)")
		listen     = flag.String("listen", "127.0.0.1:0", "client API listen address")
		addrFile   = flag.String("addr-file", "", "write the bound API address to this file (for scripts)")
		maxPending = flag.Int("max-pending", service.DefaultMaxPending, "admission queue depth; a full queue sheds proposals")
		maxActive  = flag.Int("max-active", service.DefaultMaxActive, "maximum concurrent BA instances")
		batch      = flag.Int("batch", service.DefaultBatch, "most proposals one instance decides together")
		maxPayload = flag.Int("max-payload", service.DefaultMaxPayload, "largest accepted proposeb payload in bytes")
		retryAfter = flag.Duration("retry-after", service.DefaultRetryAfter, "backoff hint attached to shed proposals")
		roundTO    = flag.Duration("round-timeout", 10*time.Second, "per-instance round deadline")
		duration   = flag.Duration("duration", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
		report     = flag.Duration("report", 5*time.Second, "periodic stats report interval (0 = silent)")
	)
	flag.Parse()
	if err := run(*n, *t, *kappa, *seed, *listen, *addrFile, *maxPending, *maxActive, *batch, *maxPayload,
		*retryAfter, *roundTO, *duration, *report); err != nil {
		fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
		os.Exit(1)
	}
}

// preflight rejects bad parameter combinations before any setup or
// socket work, with a pointed per-flag error: quorum bounds through
// internal/quorum and the queueing knobs that admission control needs.
func preflight(n, t, kappa, maxPending, maxActive, batch, maxPayload int, retryAfter, roundTO, report time.Duration) error {
	switch {
	case n < 2:
		return fmt.Errorf("-n must be at least 2, got %d", n)
	case t < 0:
		return fmt.Errorf("-t must be non-negative, got %d", t)
	case !quorum.TolerateThird(n, t):
		return fmt.Errorf("multivalued instances require 3t < n, got n=%d t=%d (raise -n or lower -t)", n, t)
	case kappa < 1:
		return fmt.Errorf("-kappa must be >= 1, got %d", kappa)
	case maxPending < 1:
		return fmt.Errorf("-max-pending must be positive, got %d", maxPending)
	case maxActive < 1:
		return fmt.Errorf("-max-active must be positive, got %d", maxActive)
	case batch < 1:
		return fmt.Errorf("-batch must be positive, got %d", batch)
	case maxPayload < 1:
		return fmt.Errorf("-max-payload must be positive, got %d", maxPayload)
	case maxPayload > service.MaxAPIPayload:
		return fmt.Errorf("-max-payload %d exceeds the line-protocol ceiling %d", maxPayload, service.MaxAPIPayload)
	case batch*(maxPayload+8) > ba.MaxPayloadBytes:
		return fmt.Errorf("-batch %d x -max-payload %d encodes past the %d-byte wire cap (lower one of them)",
			batch, maxPayload, ba.MaxPayloadBytes)
	case retryAfter <= 0:
		return fmt.Errorf("-retry-after must be positive, got %s", retryAfter)
	case roundTO <= 0:
		return fmt.Errorf("-round-timeout must be positive, got %s", roundTO)
	case report < 0:
		return fmt.Errorf("-report must be non-negative, got %s", report)
	}
	return nil
}

func run(n, t, kappa int, seed int64, listen, addrFile string, maxPending, maxActive, batch, maxPayload int,
	retryAfter, roundTO, duration, report time.Duration) error {
	if err := preflight(n, t, kappa, maxPending, maxActive, batch, maxPayload, retryAfter, roundTO, report); err != nil {
		return err
	}

	svc, err := service.New(service.Config{
		N: n, T: t, Kappa: kappa, Seed: seed,
		MaxPending: maxPending, MaxActive: maxActive, Batch: batch,
		MaxPayload: maxPayload,
		RetryAfter: retryAfter,
		Transport:  transport.Config{RoundTimeout: roundTO},
	})
	if err != nil {
		return err
	}
	defer func() { _ = svc.Close() }()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer func() { _ = ln.Close() }()
	fmt.Printf("proxserve: serving n=%d t=%d kappa=%d on %s (max-active=%d batch=%d max-pending=%d max-payload=%d)\n",
		n, t, kappa, ln.Addr(), maxActive, batch, maxPending, maxPayload)
	if addrFile != "" {
		if err := writeAddrFile(addrFile, ln.Addr().String()); err != nil {
			return err
		}
	}

	apiDone := make(chan error, 1)
	go func() { apiDone <- svc.ServeAPI(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	var expire <-chan time.Time
	if duration > 0 {
		timer := time.NewTimer(duration)
		defer timer.Stop()
		expire = timer.C
	}
	var tick <-chan time.Time
	if report > 0 {
		ticker := time.NewTicker(report)
		defer ticker.Stop()
		tick = ticker.C
	}

	start := time.Now()
	lastDecided := int64(0)
	lastTick := start
loop:
	for {
		select {
		case sig := <-sigCh:
			fmt.Printf("proxserve: %s, draining\n", sig)
			break loop
		case <-expire:
			fmt.Printf("proxserve: %s elapsed, draining\n", duration)
			break loop
		case now := <-tick:
			st := svc.Stats()
			rate := float64(st.Decided-lastDecided) / now.Sub(lastTick).Seconds()
			fmt.Printf("proxserve: decided=%d (%.1f/s) shed=%d active=%d pending=%d instances=%d\n",
				st.Decided, rate, st.Shed, st.Active, st.Pending, st.Instances)
			lastDecided, lastTick = st.Decided, now
		case err := <-apiDone:
			if err != nil {
				return fmt.Errorf("api: %w", err)
			}
			break loop
		}
	}

	_ = ln.Close()
	if err := svc.Close(); err != nil {
		return err
	}
	st := svc.Stats()
	elapsed := time.Since(start).Seconds()
	fmt.Printf("proxserve: final decided=%d shed=%d failed=%d instances=%d peak-active=%d decisions/sec=%.1f\n",
		st.Decided, st.Shed, st.Failed, st.Instances, st.PeakActive, float64(st.Decided)/elapsed)
	return nil
}

// writeAddrFile publishes the bound address atomically (write to a
// temp file, rename) so a script polling the path never reads a
// partial address.
func writeAddrFile(path, addr string) error {
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
