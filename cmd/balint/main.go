// Command balint is the repository's determinism and safety
// multichecker: it runs every internal/lint analyzer over the module's
// non-test code and fails if any invariant is violated.
//
// Usage:
//
//	go run ./cmd/balint ./...          # whole module (the CI invocation)
//	go run ./cmd/balint ./internal/ba  # one package
//	go run ./cmd/balint -list          # describe the analyzers
//
// Diagnostics print as file:line:col: message (analyzer), sorted by
// position. Exit status is 1 when diagnostics were reported, 2 on a
// load or internal error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"proxcensus/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s:\n  %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fail(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fail(err)
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range lint.All() {
			if a.Scope != nil && !a.Scope(pkg.RelPath) {
				continue
			}
			ds, err := lint.Analyze(loader, a, pkg)
			if err != nil {
				fail(err)
			}
			diags = append(diags, ds...)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "balint:", err)
	os.Exit(2)
}
