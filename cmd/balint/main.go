// Command balint is the repository's determinism and safety
// multichecker: it runs every internal/lint analyzer over the module's
// non-test code and fails if any invariant is violated.
//
// Usage:
//
//	go run ./cmd/balint ./...            # whole module (the CI invocation)
//	go run ./cmd/balint ./internal/ba    # one package
//	go run ./cmd/balint -list            # describe the analyzers
//	go run ./cmd/balint -run hotalloc,quorumexpr ./...
//	go run ./cmd/balint -short ./...     # skip the call-graph analyzers
//	go run ./cmd/balint -json ./...      # machine-readable diagnostics
//
// Human diagnostics print as file:line:col: message (analyzer), sorted
// by position; -json emits one JSON array of {file, line, col,
// analyzer, message} objects on stdout with a summary line on stderr.
// Exit status is 1 when diagnostics were reported, 2 on a load or
// internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"proxcensus/internal/lint"
)

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	short := flag.Bool("short", false, "skip the module-scoped call-graph analyzers")
	flag.Parse()

	analyzers := lint.All()
	if *short {
		analyzers = lint.WithoutModule(analyzers)
	}
	if *run != "" {
		var err error
		analyzers, err = lint.Select(analyzers, strings.Split(*run, ","))
		if err != nil {
			fail(err)
		}
	}

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s:\n  %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fail(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fail(err)
	}
	diags, err := lint.RunSuite(loader, pkgs, analyzers)
	if err != nil {
		fail(err)
	}

	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
			return rel
		}
		return name
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			pos := loader.Fset().Position(d.Pos)
			out = append(out, jsonDiag{
				File:     relName(pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			pos := loader.Fset().Position(d.Pos)
			fmt.Printf("%s:%d:%d: %s (%s)\n", relName(pos.Filename), pos.Line, pos.Column, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "balint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "balint:", err)
	os.Exit(2)
}
