// Command basim runs a single Byzantine Agreement execution with
// round-by-round tracing — a microscope on one protocol run.
//
//	basim -protocol oneshot -n 7 -t 2 -kappa 8 -inputs 1101011
//	basim -protocol half -n 5 -t 2 -kappa 6 -adversary worstcase -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"proxcensus/internal/adversary"
	"proxcensus/internal/ba"
	"proxcensus/internal/quorum"
	"proxcensus/internal/sim"
	"proxcensus/internal/transport"
)

// printTracer logs engine events.
type printTracer struct {
	verbose bool
}

func (p *printTracer) RoundStart(round int) {
	fmt.Printf("--- round %d ---\n", round)
}

func (p *printTracer) HonestSent(round int, msgs []sim.Message) {
	sigs := 0
	for _, m := range msgs {
		if m.Payload != nil {
			sigs += m.Payload.SigCount()
		}
	}
	fmt.Printf("  honest: %d messages, %d signatures\n", len(msgs), sigs)
	if p.verbose {
		for _, m := range msgs {
			if m.To == 0 { // one receiver is enough to show the shape
				fmt.Printf("    %2d -> %2d  %T%+v\n", m.From, m.To, m.Payload, m.Payload)
			}
		}
	}
}

func (p *printTracer) AdversarySent(round int, msgs []sim.Message) {
	if len(msgs) > 0 {
		fmt.Printf("  adversary: %d messages\n", len(msgs))
	}
}

func (p *printTracer) Corrupted(round int, party sim.PartyID) {
	fmt.Printf("  !! party %d corrupted in round %d\n", party, round)
}

func main() {
	var (
		protoName = flag.String("protocol", "oneshot", "oneshot | fm | half | mv")
		n         = flag.Int("n", 7, "number of parties")
		t         = flag.Int("t", 2, "corruption budget")
		kappa     = flag.Int("kappa", 8, "security parameter")
		inputsStr = flag.String("inputs", "", "binary input string, e.g. 1101011 (default: split)")
		advName   = flag.String("adversary", "passive", "passive | crash | worstcase")
		coinMode  = flag.String("coin", "ideal", "ideal | threshold")
		seed      = flag.Int64("seed", 1, "execution seed")
		workers   = flag.Int("workers", 0, "engine worker goroutines (0 = sequential, -1 = GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "dump per-party payloads")
		overTCP   = flag.Bool("tcp", false, "run honest parties as TCP nodes (adversary must be passive)")
		roundTO   = flag.Duration("round-timeout", 30*time.Second, "per-round deadline in -tcp mode")
	)
	flag.Parse()
	if err := run(*protoName, *n, *t, *kappa, *inputsStr, *advName, *coinMode, *seed, *workers, *verbose, *overTCP, *roundTO); err != nil {
		fmt.Fprintf(os.Stderr, "basim: %v\n", err)
		os.Exit(1)
	}
}

// preflight rejects parameter combinations before any setup or socket
// work: unknown protocols, kappa below 1, quorum-bound violations and
// nonpositive TCP deadlines all fail here with a pointed error.
func preflight(protoName string, n, t, kappa int, overTCP bool, roundTO time.Duration) error {
	if kappa < 1 {
		return fmt.Errorf("-kappa must be >= 1, got %d", kappa)
	}
	switch protoName {
	case "oneshot", "fm":
		if !quorum.TolerateThird(n, t) {
			return fmt.Errorf("protocol %s requires 3t < n, got n=%d t=%d (raise -n or lower -t)", protoName, n, t)
		}
	case "half", "mv":
		if !quorum.TolerateHalf(n, t) {
			return fmt.Errorf("protocol %s requires 2t < n, got n=%d t=%d (raise -n or lower -t)", protoName, n, t)
		}
	default:
		return fmt.Errorf("unknown protocol %q (know oneshot, fm, half, mv)", protoName)
	}
	if overTCP && roundTO <= 0 {
		return fmt.Errorf("-round-timeout must be positive in -tcp mode, got %s", roundTO)
	}
	return nil
}

func run(protoName string, n, t, kappa int, inputsStr, advName, coinMode string, seed int64, workers int, verbose, overTCP bool, roundTO time.Duration) error {
	if err := preflight(protoName, n, t, kappa, overTCP, roundTO); err != nil {
		return err
	}
	mode := ba.CoinIdeal
	if coinMode == "threshold" {
		mode = ba.CoinThreshold
	}
	setup, err := ba.NewSetup(n, t, mode, seed)
	if err != nil {
		return err
	}

	inputs := make([]ba.Value, n)
	if inputsStr == "" {
		for i := t + 1; i < n; i++ {
			inputs[i] = 1
		}
	} else {
		if len(inputsStr) != n {
			return fmt.Errorf("inputs %q has %d bits for n=%d", inputsStr, len(inputsStr), n)
		}
		for i, c := range inputsStr {
			if c != '0' && c != '1' {
				return fmt.Errorf("inputs must be binary, got %q", inputsStr)
			}
			inputs[i] = int(c - '0')
		}
	}

	var proto *ba.Protocol
	var iterRounds int
	switch protoName {
	case "oneshot":
		proto, err = ba.NewOneShot(setup, kappa, inputs)
		if proto != nil {
			iterRounds = proto.Rounds
		}
	case "fm":
		proto, err = ba.NewFM(setup, kappa, inputs)
		iterRounds = 2
	case "half":
		proto, err = ba.NewHalf(setup, kappa, inputs)
		iterRounds = 3
	case "mv":
		proto, err = ba.NewMV(setup, kappa, inputs)
		iterRounds = 2
	default:
		return fmt.Errorf("unknown protocol %q", protoName)
	}
	if err != nil {
		return err
	}

	var adv sim.Adversary
	switch advName {
	case "passive":
		adv = sim.Passive{}
	case "crash":
		adv = &adversary.Crash{Victims: adversary.FirstT(t)}
	case "worstcase":
		switch protoName {
		case "oneshot", "fm":
			adv = &adversary.ExpandAdaptiveSplit{N: n, T: t, Period: iterRounds}
		default:
			adv = &adversary.LinearAdaptiveSplit{N: n, T: t, Period: iterRounds, Keys: setup.ProxSKs[:t]}
		}
	default:
		return fmt.Errorf("unknown adversary %q", advName)
	}

	fmt.Printf("protocol=%s n=%d t=%d kappa=%d rounds=%d coin=%s adversary=%s\n",
		proto.Name, n, t, kappa, proto.Rounds, mode, adv.Name())
	fmt.Printf("inputs: %s\n", formatValues(inputs))

	if overTCP {
		if advName != "passive" {
			return fmt.Errorf("-tcp runs honest nodes only; use -adversary passive")
		}
		cfg := transport.DefaultConfig()
		cfg.RoundTimeout = roundTO
		res, err := transport.RunLocalConfig(proto.Machines, proto.Rounds, cfg)
		if err != nil {
			return err
		}
		for i, e := range res.Errs {
			if e != nil {
				return fmt.Errorf("node %d: %w", i, e)
			}
		}
		decisions := ba.DecisionsFromOutputs(res.Outputs)
		fmt.Printf("\ndecisions (TCP nodes, by ID): %s\n", formatValues(decisions))
		if err := ba.CheckAgreement(decisions); err != nil {
			fmt.Printf("AGREEMENT: VIOLATED (%v)\n", err)
		} else {
			fmt.Println("AGREEMENT: ok")
		}
		return nil
	}

	res, err := sim.Run(sim.Config{
		N: n, T: t, Rounds: proto.Rounds, Seed: seed,
		Workers: workers,
		Tracer:  &printTracer{verbose: verbose},
	}, proto.Machines, adv)
	if err != nil {
		return err
	}

	decisions := ba.Decisions(res)
	fmt.Printf("\ndecisions (honest, by ID): %s\n", formatValues(decisions))
	fmt.Printf("metrics: %s\n", res.Metrics.String())
	if err := ba.CheckAgreement(decisions); err != nil {
		fmt.Printf("AGREEMENT: VIOLATED (%v)\n", err)
	} else {
		fmt.Println("AGREEMENT: ok")
	}
	return nil
}

func formatValues(vals []ba.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, " ")
}
