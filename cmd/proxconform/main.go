// Command proxconform runs the protocol conformance suite: adversary
// strategy search over every protocol family with the paper-property
// oracles, plus the statistical check of the 1/(s-1) per-iteration
// disagreement bound.
//
//	proxconform                             # sweep all families, default budget
//	proxconform -families oneshot,half      # a subset
//	proxconform -strategies 2000 -kappa 3   # a longer sweep
//	proxconform -exhaustive                 # exhaustive 2-round expand model check
//	proxconform -bounds -trials 5000        # statistical bound check only
//	proxconform -replay 'v=0:cr=1:...' -family oneshot -inputs 0111
//
// Every violation prints a VIOLATION line carrying the StrategyID that
// replays it; exit status is 1 when any conformance failure was found.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"proxcensus/internal/conformance"
)

func main() {
	families := flag.String("families", strings.Join(conformance.Families(), ","), "comma-separated protocol families to sweep")
	kappa := flag.Int("kappa", 2, "security parameter for the swept protocols")
	strategies := flag.Int("strategies", 500, "distinct strategies per family")
	seed := flag.Int64("seed", 0x5eed, "search seed; everything derives from it")
	alpha := flag.Float64("alpha", 1e-4, "significance level for the probabilistic-property checks")
	exhaustive := flag.Bool("exhaustive", false, "also run the exhaustive 2-round expand model check (~27k executions)")
	bounds := flag.Bool("bounds", false, "run the statistical disagreement-bound checks")
	trials := flag.Int("trials", 2000, "executions per statistical bound check")
	replay := flag.String("replay", "", "StrategyID to replay (requires -family and -inputs)")
	family := flag.String("family", "", "single family for -replay")
	inputs := flag.String("inputs", "", "input bits for -replay, one digit per party")
	flag.Parse()

	failed := false
	switch {
	case *replay != "":
		failed = runReplay(*family, *kappa, *inputs, *replay)
	default:
		for _, f := range strings.Split(*families, ",") {
			failed = runSweep(strings.TrimSpace(f), *kappa, *strategies, *seed, *alpha) || failed
		}
		if *exhaustive {
			failed = runExhaustive() || failed
		}
		if *bounds {
			failed = runBounds(*kappa, *trials, *alpha) || failed
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runSweep sweeps one family and prints its report. Returns true on
// conformance failure.
func runSweep(family string, kappa, strategies int, seed int64, alpha float64) bool {
	report, err := conformance.SweepFamily(family, kappa, strategies, seed, alpha)
	if err != nil {
		fail(err)
	}
	fmt.Println(report.String())
	for _, v := range report.Stat {
		fmt.Printf("  expected-rate %s\n", v)
	}
	return !report.OK()
}

// runExhaustive model-checks the 2-round expansion exhaustively.
func runExhaustive() bool {
	tg, sp := conformance.ExpandTarget(4, 1, 2)
	ex := &conformance.Explorer{Target: tg, Space: sp, Oracles: conformance.ProxOracles()}
	runs, violations, err := ex.Exhaustive(nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("exhaustive expand n=4 t=1 rounds=2: %d executions, %d violations\n", runs, len(violations))
	for _, v := range violations {
		fmt.Printf("  %s\n", v)
	}
	return len(violations) > 0
}

// runBounds runs the statistical disagreement-bound checks.
func runBounds(kappa, trials int, alpha float64) bool {
	failed := false
	oneshot, err := conformance.OneShotBoundSample(4, 1, kappa, trials)
	if err != nil {
		fail(err)
	}
	half, err := conformance.HalfBoundSample(3, 1, trials)
	if err != nil {
		fail(err)
	}
	for _, sample := range []conformance.BoundSample{oneshot, half} {
		report, err := sample.Check(alpha)
		if err != nil {
			fail(err)
		}
		fmt.Printf("bound %s s=%d: %s\n", sample.Family, sample.Slots, report)
		failed = failed || !report.Consistent
	}
	return failed
}

// runReplay re-executes one strategy from its printed ID.
func runReplay(family string, kappa int, inputBits, id string) bool {
	if family == "" || inputBits == "" {
		fail(fmt.Errorf("-replay requires -family and -inputs"))
	}
	var tg conformance.Target
	var sp conformance.Space
	if family == "expand" {
		tg, sp = conformance.ExpandTarget(4, 1, 2)
	} else {
		var err error
		tg, sp, err = conformance.FamilyTarget(family, kappa)
		if err != nil {
			fail(err)
		}
	}
	inputs := make([]int, 0, len(inputBits))
	for _, c := range inputBits {
		if c != '0' && c != '1' {
			fail(fmt.Errorf("inputs must be 0/1 digits, got %q", inputBits))
		}
		inputs = append(inputs, int(c-'0'))
	}
	if len(inputs) != tg.N {
		fail(fmt.Errorf("family %s has n=%d, got %d input digits", family, tg.N, len(inputs)))
	}
	oracles := conformance.BAOracles()
	if family == "expand" {
		oracles = conformance.ProxOracles()
	}
	ex := &conformance.Explorer{Target: tg, Space: sp, Oracles: oracles}
	violations, err := ex.Replay(inputs, id)
	if err != nil {
		fail(err)
	}
	if len(violations) == 0 {
		fmt.Println("replay clean: no oracle violations")
		return false
	}
	for _, v := range violations {
		fmt.Println(v.String())
	}
	return true
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "proxconform:", err)
	os.Exit(2)
}
