// Command proxlab runs a declarative experiment spec: a sweep grid of
// protocol family × fault level × network model × seeds, every trial
// timeout-wrapped and classified decided / degraded / timed-out. It
// archives one JSONL line per trial and renders the graceful-
// degradation curve (decision rate with Wilson intervals, wall-clock
// quantiles) as faults sweep 0→t.
//
//	proxlab -spec experiments/specs/smoke-expand.json
//	proxlab -spec experiments/specs/degradation-oneshot.json -out results/experiments
//	proxlab -curve results/experiments/smoke-expand.jsonl
//
// The same spec file and seeds reproduce identical per-trial outcomes
// and trace hashes; the JSONL artifact carries each trial's schedule
// spec for standalone replay via proxcast -faults. With -gate the exit
// status enforces the zero-fault baseline: every faults=0 trial must
// decide, making the smoke spec a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"proxcensus/internal/experiment"
)

func main() {
	var (
		specPath = flag.String("spec", "", "experiment spec file (JSON)")
		outDir   = flag.String("out", "results/experiments", "artifact directory for JSONL results and curve tables")
		curve    = flag.String("curve", "", "skip running: render the degradation curve of an existing JSONL artifact")
		gate     = flag.Bool("gate", false, "exit nonzero unless every faults=0 trial decided")
		quiet    = flag.Bool("q", false, "suppress per-trial progress lines")
	)
	flag.Parse()
	if err := run(*specPath, *outDir, *curve, *gate, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "proxlab: %v\n", err)
		os.Exit(1)
	}
}

func run(specPath, outDir, curvePath string, gate, quiet bool) error {
	if curvePath != "" {
		return renderCurve(curvePath)
	}
	if specPath == "" {
		return fmt.Errorf("need -spec FILE (or -curve FILE); see experiments/specs/")
	}
	f, err := os.Open(specPath)
	if err != nil {
		return err
	}
	spec, err := experiment.ParseSpec(f)
	_ = f.Close()
	if err != nil {
		return err
	}
	trials, err := spec.Trials()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	artifact := filepath.Join(outDir, spec.Name+".jsonl")
	af, err := os.Create(artifact)
	if err != nil {
		return err
	}
	defer func() { _ = af.Close() }()

	fmt.Printf("proxlab: %s: family=%s n=%d t=%d rounds=%d trials=%d network=%s\n",
		spec.Name, spec.Family, spec.N, spec.T, spec.ProtocolRounds(), len(trials), orNone(spec.Network))
	fmt.Printf("timeouts: round=%s trial=%s (every trial watchdog-wrapped)\n",
		spec.RoundTimeout(), spec.TrialTimeout())

	// Stream each result the moment it classifies: a killed sweep
	// still leaves a parseable partial artifact.
	enc := json.NewEncoder(af)
	r := &experiment.Runner{
		Spec: spec,
		Sink: func(tr experiment.TrialResult) { _ = enc.Encode(tr) },
	}
	if !quiet {
		r.Logf = func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) }
	}
	results, err := r.Run()
	if err != nil {
		return err
	}
	fmt.Printf("archived %d trials to %s\n", len(results), artifact)

	cv, err := experiment.Curve(results)
	if err != nil {
		return err
	}
	if err := experiment.WriteCurve(os.Stdout, spec.Name, cv); err != nil {
		return err
	}
	curveFile := filepath.Join(outDir, spec.Name+"-curve.txt")
	cf, err := os.Create(curveFile)
	if err != nil {
		return err
	}
	werr := experiment.WriteCurve(cf, spec.Name, cv)
	if cerr := cf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("curve table written to %s\n", curveFile)

	if gate {
		return checkGate(results)
	}
	return nil
}

// checkGate enforces the zero-fault baseline: with no faults injected
// there is no excuse for anything but a decision.
func checkGate(results []experiment.TrialResult) error {
	baseline, failed := 0, 0
	for _, tr := range results {
		if tr.Faults != 0 {
			continue
		}
		baseline++
		if tr.Outcome != experiment.OutcomeDecided {
			failed++
			fmt.Fprintf(os.Stderr, "gate: trial %d seed=%d: %s (%s)\n", tr.Trial, tr.Seed, tr.Outcome, tr.Detail)
		}
	}
	if baseline == 0 {
		return fmt.Errorf("gate: no faults=0 trials in the sweep")
	}
	if failed > 0 {
		return fmt.Errorf("gate: %d/%d faults=0 trials did not decide", failed, baseline)
	}
	fmt.Printf("gate: all %d faults=0 trials decided\n", baseline)
	return nil
}

// renderCurve re-analyzes an existing artifact, tolerating partial or
// truncated files.
func renderCurve(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	results, skipped, err := experiment.ReadJSONL(f)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "proxlab: skipped %d malformed line(s) in %s\n", skipped, path)
	}
	if len(results) == 0 {
		return fmt.Errorf("%s holds no parseable trials", path)
	}
	cv, err := experiment.Curve(results)
	if err != nil {
		return err
	}
	return experiment.WriteCurve(os.Stdout, filepath.Base(path), cv)
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
