// Command proxcast demonstrates the s-slot Proxcast of Appendix A: a
// dealer distributes a signed value in s-1 rounds against up to t < n
// corruptions, and every party grades how consistently it saw it.
//
//	proxcast -n 6 -s 9 -dealer honest
//	proxcast -n 6 -s 9 -dealer withhold
//	proxcast -n 6 -s 9 -dealer release -release 5
//
// With -seed or -faults the run leaves the simulator and executes over
// real TCP with a chaos fault schedule injected: benign deployment
// faults (crashes, drops, delays, duplicated frames, partitions) and
// Byzantine nodes speaking the wire format maliciously (byz:NODE@ROLE,
// roles equivocate|garbage|replay|straddle|wronground|dupflood|
// malformed). Honest nodes screen their ingress through
// internal/validate unless -validate=false. The printed spec replays
// the exact schedule via -faults:
//
//	proxcast -n 6 -s 9 -seed 3
//	proxcast -n 6 -s 9 -faults 'crash:2@3;drop:1@2'
//	proxcast -n 6 -s 9 -faults 'byz:5@equivocate;crash:2@3'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"proxcensus/internal/adversary"
	"proxcensus/internal/chaos"
	"proxcensus/internal/crypto/sig"
	"proxcensus/internal/proxcensus"
	"proxcensus/internal/sim"
	"proxcensus/internal/transport"
	"proxcensus/internal/validate"
)

func main() {
	var (
		n        = flag.Int("n", 6, "number of parties")
		t        = flag.Int("t", 2, "corruption budget")
		s        = flag.Int("s", 9, "slot count (runs s-1 rounds)")
		behavior = flag.String("dealer", "honest", "honest | equivocate | withhold | release")
		release  = flag.Int("release", 3, "round to release the contradiction (dealer=release)")
		input    = flag.Int("input", 1, "dealer input value")
		pr       = flag.Bool("player-replaceable", false, "enable the n-t forwarding quota (t<n/2 variant)")
		faults   = flag.String("faults", "", "chaos schedule spec to inject over TCP (e.g. 'crash:2@3;byz:5@garbage')")
		seed     = flag.Int64("seed", 0, "generate a seeded chaos schedule and run it over TCP (0 = simulator)")
		roundTO  = flag.Duration("round-timeout", time.Second, "per-round deadline in chaos mode")
		screen   = flag.Bool("validate", true, "screen honest ingress through the validation layer in chaos mode")
	)
	flag.Parse()
	var err error
	if *faults != "" || *seed != 0 {
		err = runChaos(*n, *t, *s, *behavior, *input, *pr, *faults, *seed, *roundTO, *screen)
	} else {
		err = run(*n, *t, *s, *behavior, *release, *input, *pr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxcast: %v\n", err)
		os.Exit(1)
	}
}

// runChaos executes the honest-dealer proxcast over TCP under a fault
// schedule: parsed from -faults, or generated from -seed. Byzantine
// nodes come from the schedule (byz:NODE@ROLE); the -dealer strategies
// are adaptive simulator adversaries and stay simulator-only.
func runChaos(n, t, s int, behavior string, input int, pr bool, spec string, seed int64, roundTO time.Duration, screen bool) error {
	// Pre-flight: every knob the run depends on is checked before a
	// socket opens, each with its own pointed error.
	switch {
	case s < 2:
		return fmt.Errorf("-s must be >= 2 (s slots run s-1 rounds), got %d", s)
	case n < 2:
		return fmt.Errorf("-n must be >= 2, got %d", n)
	case t < 0 || t >= n:
		return fmt.Errorf("-t must satisfy 0 <= t < n, got n=%d t=%d", n, t)
	case roundTO <= 0:
		return fmt.Errorf("-round-timeout must be positive in chaos mode, got %s", roundTO)
	}
	if behavior != "honest" {
		return fmt.Errorf("the -dealer strategies are adaptive simulator adversaries; in chaos mode schedule Byzantine nodes with 'byz:NODE@ROLE' in -faults instead")
	}
	rounds := s - 1
	var sched chaos.Schedule
	var err error
	if spec != "" {
		if sched, err = chaos.Parse(spec, n, t, rounds); err != nil {
			return err
		}
	} else {
		sched = chaos.Generate(n, t, rounds, seed)
	}

	const dealer = 0
	var keySeed [sig.Size]byte
	keySeed[0] = 0x5a
	pk, sk := sig.KeyGen(dealer, keySeed)
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		cfg := proxcensus.ProxcastConfig{
			N: n, T: t, Slots: s, Self: i, Dealer: dealer,
			Input: input, DealerPK: pk, PlayerReplaceable: pr,
		}
		if i == dealer {
			cfg.DealerSK = sk
		}
		machines[i] = proxcensus.NewProxcastMachine(cfg)
	}

	cfg := transport.DefaultConfig()
	cfg.RoundTimeout = roundTO
	if screen {
		cfg.NewIngress = func(int) *validate.Validator {
			return validate.New(validate.ForProxcast(n, rounds, pk))
		}
	}
	res, err := chaos.Run(machines, sched, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("proxcast: n=%d t=%d s=%d rounds=%d transport=tcp\n", n, t, s, rounds)
	fmt.Printf("schedule: %q (replay with -faults)\n", sched.Spec())
	fmt.Printf("faulty: %v\n", sched.FaultyNodes())
	results := make([]proxcensus.Result, 0, n)
	for _, id := range res.Survivors() {
		if res.Errs[id] != nil {
			fmt.Printf("  party %d: error: %v\n", id, res.Errs[id])
			continue
		}
		r := res.Outputs[id].(proxcensus.Result)
		results = append(results, r)
		fmt.Printf("  party %d: value=%d grade=%d/%d\n", id, r.Value, r.Grade, proxcensus.MaxGrade(s))
	}
	fmt.Printf("transport: %s\n", res.Hub.Summary())
	if screen {
		v := res.Validation()
		fmt.Printf("ingress: %s\n", v.Summary())
		for _, e := range v.Evidence {
			fmt.Printf("  equivocation %s\n", e)
		}
	}
	if err := res.CheckAgreement(); err != nil {
		fmt.Printf("AGREEMENT: VIOLATED (%v)\n", err)
	} else if err := proxcensus.CheckConsistency(s, results); err != nil {
		fmt.Printf("CONSISTENCY: VIOLATED (%v)\n", err)
	} else {
		fmt.Println("CONSISTENCY: ok")
	}
	return nil
}

func run(n, t, s int, behavior string, release, input int, pr bool) error {
	if s < 2 || n < 2 || t < 0 || t >= n {
		return fmt.Errorf("invalid parameters n=%d t=%d s=%d", n, t, s)
	}
	const dealer = 0
	var seed [sig.Size]byte
	seed[0] = 0x5a
	pk, sk := sig.KeyGen(dealer, seed)

	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		cfg := proxcensus.ProxcastConfig{
			N: n, T: t, Slots: s, Self: i, Dealer: dealer,
			Input: input, DealerPK: pk, PlayerReplaceable: pr,
		}
		if i == dealer && behavior == "honest" {
			cfg.DealerSK = sk
		}
		machines[i] = proxcensus.NewProxcastMachine(cfg)
	}

	var adv sim.Adversary = sim.Passive{}
	pairFor := func(v int) proxcensus.ProxcastSet {
		return proxcensus.ProxcastSet{Pairs: []proxcensus.ProxcastPair{
			{Z: v, Sig: sig.Sign(sk, proxcensus.ProxcastMessage(v))},
		}}
	}
	switch behavior {
	case "honest":
	case "equivocate":
		adv = &adversary.Func{
			StrategyName: "equivocating-dealer",
			InitFunc:     func(env *sim.Env) { env.Corrupt(dealer) },
			ActFunc: func(round int, _ []sim.Message, env *sim.Env) []sim.Message {
				if round != 1 {
					return nil
				}
				var msgs []sim.Message
				for to := 0; to < env.N(); to++ {
					v := 0
					if to >= env.N()/2 {
						v = 1
					}
					msgs = append(msgs, sim.Message{From: dealer, To: to, Payload: pairFor(v)})
				}
				return msgs
			},
		}
	case "withhold":
		adv = &adversary.Func{
			StrategyName: "withholding-dealer",
			InitFunc:     func(env *sim.Env) { env.Corrupt(dealer) },
			ActFunc: func(round int, _ []sim.Message, env *sim.Env) []sim.Message {
				if round != 1 {
					return nil
				}
				return []sim.Message{{From: dealer, To: env.N() - 1, Payload: pairFor(input)}}
			},
		}
	case "release":
		adv = &adversary.Func{
			StrategyName: "late-release-dealer",
			InitFunc: func(env *sim.Env) {
				env.Corrupt(dealer)
				env.Corrupt(1)
			},
			ActFunc: func(round int, _ []sim.Message, env *sim.Env) []sim.Message {
				var msgs []sim.Message
				if round == 1 {
					for to := 0; to < env.N(); to++ {
						msgs = append(msgs, sim.Message{From: dealer, To: to, Payload: pairFor(0)})
					}
				}
				if round == release {
					for to := 0; to < env.N(); to++ {
						msgs = append(msgs, sim.Message{From: 1, To: to, Payload: pairFor(1)})
					}
				}
				return msgs
			},
		}
	default:
		return fmt.Errorf("unknown dealer behaviour %q", behavior)
	}

	res, err := sim.Run(sim.Config{N: n, T: t, Rounds: s - 1, Seed: 1}, machines, adv)
	if err != nil {
		return err
	}
	fmt.Printf("proxcast: n=%d t=%d s=%d rounds=%d dealer=%s\n", n, t, s, s-1, behavior)
	results := make([]proxcensus.Result, 0, len(res.Outputs))
	for p := 0; p < n; p++ {
		out, ok := res.Outputs[p]
		if !ok {
			fmt.Printf("  party %d: corrupted\n", p)
			continue
		}
		r := out.(proxcensus.Result)
		results = append(results, r)
		fmt.Printf("  party %d: value=%d grade=%d/%d\n", p, r.Value, r.Grade, proxcensus.MaxGrade(s))
	}
	if err := proxcensus.CheckConsistency(s, results); err != nil {
		fmt.Printf("CONSISTENCY: VIOLATED (%v)\n", err)
	} else {
		fmt.Println("CONSISTENCY: ok")
	}
	return nil
}
