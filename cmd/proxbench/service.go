// Open-loop load generation against a running proxserve daemon
// (-serve ADDR): proposals are issued on a fixed schedule regardless
// of completions — the defining property of open-loop measurement, so
// a slow server accumulates visible queueing delay instead of silently
// throttling the client — and the run reports sustained decisions/sec
// plus client-side p50/p99 decision latency.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"proxcensus/internal/service"
)

// serveConfig carries the -serve mode flags.
type serveConfig struct {
	addr        string
	rate        float64
	duration    time.Duration
	proposals   int
	conns       int
	jsonPath    string
	expectAll   bool
	payloadSize int
}

// serveSummary is the measurement emitted to stdout and -json.
type serveSummary struct {
	Name         string  `json:"name"`
	DecisionsSec float64 `json:"decisions_sec"`
	P50NS        int64   `json:"p50_ns"`
	P99NS        int64   `json:"p99_ns"`
	Sent         int     `json:"sent"`
	Decided      int     `json:"decided"`
	Shed         int     `json:"shed"`
	Errors       int     `json:"errors"`
	ElapsedNS    int64   `json:"elapsed_ns"`
	// PayloadSize is the -payload-size knob (0 = digest proposals);
	// PayloadBytes totals the decided payload bytes that round-tripped
	// byte-for-byte through agreement.
	PayloadSize  int   `json:"payload_size"`
	PayloadBytes int64 `json:"payload_bytes"`
}

// runServe drives one open-loop run: issue proposals at the configured
// rate over a pool of pipelined connections, collect every response,
// and summarise throughput and latency.
func runServe(cfg serveConfig) error {
	if err := serveRunPreflight(cfg); err != nil {
		return err
	}
	total := cfg.proposals
	if total == 0 {
		total = int(cfg.rate * cfg.duration.Seconds())
		if total < 1 {
			total = 1
		}
	}

	clients := make([]*service.Client, cfg.conns)
	for i := range clients {
		c, err := service.DialClient(cfg.addr)
		if err != nil {
			return fmt.Errorf("dial %s: %w", cfg.addr, err)
		}
		defer func() { _ = c.Close() }()
		clients[i] = c
	}

	var (
		mu           sync.Mutex
		latencies    []time.Duration
		busy         int
		errCount     int
		firstErr     string
		payloadBytes int64
	)
	var wg sync.WaitGroup
	start := time.Now()
	var interval time.Duration
	if cfg.rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.rate)
	}
	sent := 0
	for i := 0; i < total; i++ {
		if interval > 0 {
			// Fixed schedule keyed to the start time, not to the previous
			// send: a stalled Propose does not slow the issue rate.
			next := start.Add(time.Duration(i) * interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		issued := time.Now()
		var payload []byte
		var ch <-chan service.Result
		var err error
		if cfg.payloadSize > 0 {
			payload = benchPayload(cfg.payloadSize, i)
			ch, err = clients[i%len(clients)].ProposePayload(payload)
		} else {
			ch, err = clients[i%len(clients)].Propose(1000 + i)
		}
		if err != nil {
			mu.Lock()
			errCount++
			if firstErr == "" {
				firstErr = err.Error()
			}
			mu.Unlock()
			continue
		}
		sent++
		wg.Add(1)
		go func(ch <-chan service.Result, issued time.Time, payload []byte) {
			defer wg.Done()
			res := <-ch
			done := time.Now()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case res.Decided && res.Committed:
				// The decided bytes must be the proposed bytes — the payload
				// round-trip is the measurement's correctness anchor, not an
				// optional extra.
				if payload != nil && !bytes.Equal(res.Payload, payload) {
					errCount++
					if firstErr == "" {
						firstErr = fmt.Sprintf("reqid %s: decided payload is %d bytes, want the %d proposed bytes back",
							res.ReqID, len(res.Payload), len(payload))
					}
					return
				}
				latencies = append(latencies, done.Sub(issued))
				payloadBytes += int64(len(res.Payload))
			case res.Busy:
				busy++
			default:
				errCount++
				if firstErr == "" {
					firstErr = fmt.Sprintf("reqid %s: committed=%v err=%q", res.ReqID, res.Committed, res.Err)
				}
			}
		}(ch, issued, payload)
	}

	// Every response eventually arrives (shed verdicts immediately,
	// decisions when the instance finishes, connection loss resolving
	// the rest), so a grace window past the issue schedule is enough.
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(cfg.duration + 2*time.Minute):
		return fmt.Errorf("open-loop run did not drain: %d of %d responses still outstanding after grace window",
			sent-resolved(&mu, &latencies, &busy, &errCount), sent)
	}
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	sum := serveSummary{
		Name:         "service-open-loop",
		Sent:         sent,
		Decided:      len(latencies),
		Shed:         busy,
		Errors:       errCount,
		ElapsedNS:    elapsed.Nanoseconds(),
		PayloadSize:  cfg.payloadSize,
		PayloadBytes: payloadBytes,
	}
	if elapsed > 0 {
		sum.DecisionsSec = float64(sum.Decided) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sum.P50NS = latencies[quantileIndex(len(latencies), 0.50)].Nanoseconds()
		sum.P99NS = latencies[quantileIndex(len(latencies), 0.99)].Nanoseconds()
	}

	fmt.Printf("service-open-loop: sent=%d decided=%d shed=%d errors=%d elapsed=%s\n",
		sum.Sent, sum.Decided, sum.Shed, sum.Errors, elapsed.Round(time.Millisecond))
	fmt.Printf("service-open-loop: decisions/sec=%.1f p50=%s p99=%s\n",
		sum.DecisionsSec, time.Duration(sum.P50NS).Round(time.Microsecond),
		time.Duration(sum.P99NS).Round(time.Microsecond))
	if cfg.payloadSize > 0 {
		fmt.Printf("service-open-loop: payload-size=%d decided-payload-bytes=%d (round-trip verified)\n",
			sum.PayloadSize, sum.PayloadBytes)
	}
	if firstErr != "" {
		fmt.Printf("service-open-loop: first error: %s\n", firstErr)
	}

	if cfg.jsonPath != "" {
		if err := writeJSONSummary(cfg.jsonPath, sum); err != nil {
			return err
		}
	}
	if cfg.expectAll && sum.Decided != sum.Sent {
		return fmt.Errorf("-expect-all: decided %d of %d sent (shed=%d errors=%d)",
			sum.Decided, sum.Sent, sum.Shed, sum.Errors)
	}
	if sum.Sent == 0 {
		return fmt.Errorf("no proposals were sent")
	}
	return nil
}

// serveRunPreflight validates the -serve mode flag combination.
func serveRunPreflight(cfg serveConfig) error {
	switch {
	case cfg.conns < 1:
		return fmt.Errorf("-conns must be positive, got %d", cfg.conns)
	case cfg.proposals < 0:
		return fmt.Errorf("-proposals must be non-negative, got %d", cfg.proposals)
	case cfg.rate < 0:
		return fmt.Errorf("-rate must be non-negative, got %g", cfg.rate)
	case cfg.proposals == 0 && (cfg.rate <= 0 || cfg.duration <= 0):
		return fmt.Errorf("need -proposals, or -rate with -duration, to size the run")
	case cfg.payloadSize < 0:
		return fmt.Errorf("-payload-size must be non-negative, got %d", cfg.payloadSize)
	case cfg.payloadSize > service.MaxAPIPayload:
		return fmt.Errorf("-payload-size %d exceeds the line-protocol ceiling %d", cfg.payloadSize, service.MaxAPIPayload)
	}
	return nil
}

// benchPayload builds the deterministic ℓ-byte payload for proposal i:
// a rolling byte pattern with the proposal index stamped up front, so
// payloads are distinct across the run and a round-trip mismatch
// cannot pass by collision.
func benchPayload(size, i int) []byte {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(i + j)
	}
	if size >= 8 {
		binary.BigEndian.PutUint64(b, uint64(i))
	}
	return b
}

// resolved counts responses already collected; called only on the
// timeout path, where it snapshots under the collector's mutex.
func resolved(mu *sync.Mutex, latencies *[]time.Duration, busy, errCount *int) int {
	mu.Lock()
	defer mu.Unlock()
	return len(*latencies) + *busy + *errCount
}

// quantileIndex maps a quantile to a sorted-slice index (nearest-rank).
func quantileIndex(n int, q float64) int {
	i := int(q*float64(n)) - 1
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// writeJSONSummary stores the summary as one JSON line, the shape
// scripts/bench_history.sh ingests.
func writeJSONSummary(path string, sum serveSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(sum); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
