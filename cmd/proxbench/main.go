// Command proxbench reproduces the paper's evaluation artefacts: every
// table, figure and quantitative claim indexed in DESIGN.md §4 /
// EXPERIMENTS.md. Run it with no flags for the full suite, or select a
// single experiment:
//
//	proxbench -exp rounds13          # E1 (structural)
//	proxbench -exp error13 -trials 4000
//	proxbench -exp comm -kappa 4
//	proxbench -list
//
// With -serve ADDR it instead becomes an open-loop client for a
// running proxserve daemon, measuring sustained decisions/sec and p99
// decision latency:
//
//	proxbench -serve 127.0.0.1:7000 -rate 200 -duration 30s
//	proxbench -serve 127.0.0.1:7000 -proposals 64 -conns 4 -expect-all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"proxcensus/internal/harness"
)

type experiment struct {
	name string
	desc string
	run  func(cfg config) (*harness.Table, error)
}

type config struct {
	trials int
	kappa  int
}

func experiments() []experiment {
	return []experiment{
		{"rounds13", "E1: round budgets t<n/3 (kappa+1 vs 2*kappa)", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentRoundsThird([]int{5, 10, 20, 30, 40, 60, 80}), nil
		}},
		{"rounds12", "E2: round budgets t<n/2 (3*kappa/2 vs 2*kappa)", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentRoundsHalf([]int{5, 10, 20, 30, 40, 60, 80}), nil
		}},
		{"error13", "E1: measured error vs bound, one-shot t<n/3, worst-case adversary", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentErrorThird(1, []int{1, 2, 3, 4, 5}, cfg.trials)
		}},
		{"error12", "E2: measured error vs bound, iterated Prox_5 t<n/2, worst-case adversary", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentErrorHalf(1, []int{2, 4, 6, 8}, cfg.trials)
		}},
		{"comm", "E3: signatures sent vs n (ours n^2 vs MV-PKI n^3)", func(cfg config) (*harness.Table, error) {
			res, err := harness.ExperimentCommScaling([]int{9, 15, 21, 31, 41, 51, 65}, cfg.kappa)
			if err != nil {
				return nil, err
			}
			return res.Table, nil
		}},
		{"iterprob", "E4: per-iteration failure probability vs 1/(s-1)", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentIterationFailure(cfg.trials)
		}},
		{"slots", "E5: Proxcensus slots by round budget, all four families", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentSlotGrowth(10), nil
		}},
		{"multival", "E6: multivalued overhead (+2 / +3 rounds)", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentMultivalued([]int{5, 10, 20, 30}, 20)
		}},
		{"proxcast", "E7: proxcast grades vs contradiction-release round", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentProxcast(6, 2, 9)
		}},
		{"payload", "E9: payload dissemination cost, bytes on wire per decided byte at n in {16,64}", func(cfg config) (*harness.Table, error) {
			trials := cfg.trials / 100
			if trials < 3 {
				trials = 3
			}
			return harness.ExperimentPayloadDissemination([]int{16, 64}, []int{1024, 4096}, cfg.kappa, trials)
		}},
		{"slotchoice", "A1: slot-count ablation for the iterated t<n/2 protocol (footnote 6)", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentSlotChoice(cfg.kappa * 10), nil
		}},
		{"coinpar", "A2: coin parallelism ablation (3 vs 4 rounds/iteration)", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentCoinParallelism(1, 4, cfg.trials)
		}},
		{"rushing", "A3: rushing ablation (attack power without the rushing view)", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentRushing(cfg.trials)
		}},
		{"termination", "E8: Las Vegas vs fixed-round termination (expected rounds, staggered halts)", func(cfg config) (*harness.Table, error) {
			return harness.ExperimentTermination(cfg.trials)
		}},
	}
}

func main() {
	var (
		expName = flag.String("exp", "all", "experiment to run (see -list)")
		trials  = flag.Int("trials", 2000, "trials per statistical experiment")
		kappa   = flag.Int("kappa", 3, "security parameter for metered experiments")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir  = flag.String("out", "", "also write each table to <dir>/<name>.txt and .csv")
		list    = flag.Bool("list", false, "list experiments and exit")
		workers = flag.Int("workers", 0, "engine worker goroutines per trial (0 = sequential, -1 = GOMAXPROCS)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")

		serveAddr   = flag.String("serve", "", "open-loop client mode: address of a running proxserve API")
		rate        = flag.Float64("rate", 0, "serve mode: proposals issued per second (0 = burst)")
		duration    = flag.Duration("duration", 0, "serve mode: issue window when -proposals is 0")
		proposals   = flag.Int("proposals", 0, "serve mode: total proposals (0 = rate * duration)")
		conns       = flag.Int("conns", 1, "serve mode: pipelined API connections")
		jsonOut     = flag.String("json", "", "serve mode: write the summary as one JSON line to this file")
		expectAll   = flag.Bool("expect-all", false, "serve mode: fail unless every sent proposal decided")
		payloadSize = flag.Int("payload-size", 0, "serve mode: propose deterministic payloads of this many bytes via proposeb and verify the decided bytes round-trip (0 = digest proposals)")
	)
	flag.Parse()

	if *serveAddr != "" {
		err := runServe(serveConfig{
			addr: *serveAddr, rate: *rate, duration: *duration,
			proposals: *proposals, conns: *conns, jsonPath: *jsonOut, expectAll: *expectAll,
			payloadSize: *payloadSize,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}

	harness.EngineWorkers = *workers
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "proxbench: memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "proxbench: memprofile: %v\n", err)
			}
			_ = f.Close()
		}()
	}

	cfg := config{trials: *trials, kappa: *kappa}
	ran := 0
	for _, e := range exps {
		if *expName != "all" && *expName != e.name {
			continue
		}
		table, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		var renderErr error
		if *csv {
			renderErr = table.CSV(os.Stdout)
		} else {
			renderErr = table.Render(os.Stdout)
		}
		if renderErr != nil {
			fmt.Fprintf(os.Stderr, "proxbench: render %s: %v\n", e.name, renderErr)
			os.Exit(1)
		}
		if *outDir != "" {
			if err := writeFiles(*outDir, e.name, table); err != nil {
				fmt.Fprintf(os.Stderr, "proxbench: write %s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "proxbench: unknown experiment %q (use -list)\n", *expName)
		os.Exit(1)
	}
}

// writeFiles stores a table under dir as both aligned text and CSV.
func writeFiles(dir, name string, table *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	if err := table.Render(txt); err != nil {
		_ = txt.Close()
		return err
	}
	if err := txt.Close(); err != nil {
		return err
	}
	csvFile, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := table.CSV(csvFile); err != nil {
		_ = csvFile.Close()
		return err
	}
	return csvFile.Close()
}
