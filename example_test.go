package proxcensus_test

import (
	"fmt"

	"proxcensus"
)

// The headline protocol: binary BA in κ+1 rounds for t < n/3.
func ExampleNewOneShot() {
	setup, err := proxcensus.NewSetup(7, 2, proxcensus.CoinIdeal, 1)
	if err != nil {
		panic(err)
	}
	proto, err := proxcensus.NewOneShot(setup, 20, []int{1, 1, 0, 1, 0, 1, 1})
	if err != nil {
		panic(err)
	}
	res, err := proto.Run(proxcensus.Passive(), 42)
	if err != nil {
		panic(err)
	}
	decisions := proxcensus.Decisions(res)
	fmt.Println("rounds:", proto.Rounds)
	fmt.Println("agreement:", proxcensus.CheckAgreement(decisions) == nil)
	// Output:
	// rounds: 21
	// agreement: true
}

// The t < n/2 protocol at 3κ/2 rounds, with two crashed parties.
func ExampleNewHalf() {
	setup, err := proxcensus.NewSetup(5, 2, proxcensus.CoinThreshold, 7)
	if err != nil {
		panic(err)
	}
	proto, err := proxcensus.NewHalf(setup, 10, []int{1, 1, 1, 1, 1})
	if err != nil {
		panic(err)
	}
	res, err := proto.Run(proxcensus.Crash(0, 1), 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", proto.Rounds)
	fmt.Println("decisions:", proxcensus.Decisions(res))
	// Output:
	// rounds: 15
	// decisions: [1 1 1]
}

// Multivalued agreement over arbitrary ints via the Turpin-Coan prefix.
func ExampleNewMultivaluedOneShot() {
	setup, err := proxcensus.NewSetup(7, 2, proxcensus.CoinIdeal, 5)
	if err != nil {
		panic(err)
	}
	inputs := []int{42, 42, 42, 42, 42, 13, 42}
	proto, err := proxcensus.NewMultivaluedOneShot(setup, 12, inputs, -1)
	if err != nil {
		panic(err)
	}
	res, err := proto.Run(proxcensus.Passive(), 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("decision:", proxcensus.Decisions(res)[0])
	// Output:
	// decision: 42
}

// The raw Proxcensus primitive: adjacency and graded confidence.
func ExampleRunProxcensus() {
	setup, err := proxcensus.NewSetup(7, 2, proxcensus.CoinIdeal, 9)
	if err != nil {
		panic(err)
	}
	inputs := []int{1, 1, 1, 1, 1, 1, 1}
	exec, err := proxcensus.RunProxcensus(setup, proxcensus.ProxExpand, 3, inputs, proxcensus.Passive(), 1)
	if err != nil {
		panic(err)
	}
	first := exec.HonestResults()[0]
	fmt.Printf("slots: %d, output: value=%d grade=%d/%d\n",
		exec.Slots, first.Value, first.Grade, proxcensus.MaxGrade(exec.Slots))
	// Output:
	// slots: 9, output: value=1 grade=4/4
}

// Appendix A's single-sender Proxcast: a dealer distributes a value,
// everyone grades how consistently they saw it.
func ExampleRunProxcast() {
	exec, err := proxcensus.RunProxcast(proxcensus.ProxcastRun{
		N: 6, T: 2, Slots: 9, Dealer: 0, Input: 3, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	r := exec.HonestResults()[0]
	fmt.Printf("value=%d grade=%d/%d in %d rounds\n",
		r.Value, r.Grade, proxcensus.MaxGrade(exec.Slots), exec.Metrics.Rounds)
	// Output:
	// value=3 grade=4/4 in 8 rounds
}

// RenderSlotLine draws the Fig. 1 slot-line picture of an execution.
func ExampleRenderSlotLine() {
	line, err := proxcensus.RenderSlotLine(5, []proxcensus.ProxResult{
		{Value: 0, Grade: 1}, {Value: 0, Grade: 1}, {Value: 1, Grade: 0},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(line)
	// Output:
	// slot   (0,2) (0,1) (-,0) (1,1) (1,2)
	// count    .     2     1     .     .
}
