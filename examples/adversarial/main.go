// Adversarial: measures the paper's headline claim under fire. A
// worst-case, strongly rushing adaptive adversary keeps the honest
// parties straddling two adjacent Proxcensus slots; disagreement then
// requires the coin to hit the single cut between them. The one-shot
// protocol reaches error 2^-κ in κ+1 rounds where fixed-round
// Feldman-Micali needs 2κ — this example measures both at equal ROUND
// budgets to show the gap.
package main

import (
	"fmt"
	"log"

	"proxcensus"
)

func main() {
	const (
		n      = 4 // extremal n = 3t+1: the adversary's best case
		t      = 1
		trials = 3000
	)

	fmt.Printf("worst-case adversary, n=%d t=%d, %d trials per row\n\n", n, t, trials)
	fmt.Printf("%-8s  %-22s  %-22s\n", "rounds", "one-shot error", "Feldman-Micali error")

	// Compare at equal round budgets: in R rounds, the one-shot
	// protocol affords κ = R-1 (error 2^-(R-1)) while FM affords R/2
	// iterations (error 2^-(R/2)).
	for _, rounds := range []int{4, 6, 8} {
		oneshot := measure(trials, func(seed int64) (*proxcensus.Protocol, proxcensus.Adversary, error) {
			setup, err := proxcensus.NewSetup(n, t, proxcensus.CoinIdeal, seed*31+7)
			if err != nil {
				return nil, nil, err
			}
			proto, err := proxcensus.NewOneShot(setup, rounds-1, splitInputs(n, t))
			if err != nil {
				return nil, nil, err
			}
			return proto, proxcensus.WorstCaseThird(n, t, proto.Rounds), nil
		})
		fm := measure(trials, func(seed int64) (*proxcensus.Protocol, proxcensus.Adversary, error) {
			setup, err := proxcensus.NewSetup(n, t, proxcensus.CoinIdeal, seed*37+3)
			if err != nil {
				return nil, nil, err
			}
			proto, err := proxcensus.NewFM(setup, rounds/2, splitInputs(n, t))
			if err != nil {
				return nil, nil, err
			}
			return proto, proxcensus.WorstCaseThird(n, t, 2), nil
		})
		fmt.Printf("%-8d  %-22s  %-22s\n", rounds, oneshot, fm)
	}

	fmt.Println("\nsame rounds, quadratically smaller error: the expand-and-extract")
	fmt.Println("iteration converts every extra round into a doubled slot count,")
	fmt.Println("while FM only gets one 1/2-failure iteration per TWO rounds.")
}

func measure(trials int, factory proxcensus.TrialFactory) string {
	out, err := proxcensus.RunTrials("adversarial", trials, factory)
	if err != nil {
		log.Fatalf("trials: %v", err)
	}
	return fmt.Sprintf("%.4f [%0.4f,%0.4f]", out.ErrorRate.P, out.ErrorRate.Lo, out.ErrorRate.Hi)
}

func splitInputs(n, t int) []int {
	inputs := make([]int, n)
	for i := t + 1; i < n; i++ {
		inputs[i] = 1
	}
	return inputs
}
