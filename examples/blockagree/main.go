// Blockagree: a consortium of validators finalizes one block per height
// with multivalued Byzantine Agreement — the fixed-round,
// simultaneous-termination setting the paper highlights (its protocols
// compose cleanly round-by-round, unlike probabilistic-termination BA).
//
// Each height, validators receive (possibly conflicting) block
// proposals from the network; two validators are Byzantine and a third
// sees a stale proposal. Multivalued BA for t < n/2 decides a single
// block hash in 3κ/2 + 3 rounds.
package main

import (
	"fmt"
	"log"

	"proxcensus"
)

// noBlock is the fallback decision when the validators cannot converge
// on any proposed block (the chain skips the height).
const noBlock = -1

func main() {
	const (
		n       = 7
		t       = 3 // t < n/2: up to 3 of 7 validators Byzantine
		kappa   = 16
		heights = 4
	)

	// One long-lived setup serves the whole chain; each height gets a
	// fresh protocol instance.
	setup, err := proxcensus.NewSetup(n, t, proxcensus.CoinThreshold, 2024)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}

	// Proposals per validator per height: block IDs as ints (hashes in
	// a real system). Height 2 has a split view; height 3 a stale node.
	proposals := [heights][n]int{
		{101, 101, 101, 101, 101, 101, 101}, // clean height
		{202, 202, 202, 202, 202, 202, 202}, // clean height
		{303, 304, 303, 304, 303, 304, 303}, // network split: two proposals
		{405, 405, 405, 404, 405, 405, 405}, // one stale validator
	}

	chain := make([]int, 0, heights)
	for h := 0; h < heights; h++ {
		inputs := proposals[h][:]
		proto, err := proxcensus.NewMultivaluedHalf(setup, kappa, inputs, noBlock)
		if err != nil {
			log.Fatalf("height %d: %v", h, err)
		}
		// Validators 5 and 6 are Byzantine this run (crash-faulty).
		res, err := proto.Run(proxcensus.Crash(5, 6), int64(h+1))
		if err != nil {
			log.Fatalf("height %d: %v", h, err)
		}
		decisions := proxcensus.Decisions(res)
		if err := proxcensus.CheckAgreement(decisions); err != nil {
			log.Fatalf("height %d: consensus violated: %v", h, err)
		}
		block := decisions[0]
		chain = append(chain, block)
		fmt.Printf("height %d: proposals=%v -> finalized block %v in %d rounds\n",
			h, inputs, render(block), proto.Rounds)
	}

	fmt.Printf("\nchain: ")
	for _, b := range chain {
		fmt.Printf("[%s]", render(b))
	}
	fmt.Println()
	fmt.Printf("every height terminated in exactly %d rounds — simultaneous\n", 3*((kappa+1)/2)+3)
	fmt.Println("termination lets heights pipeline back-to-back with no padding.")
}

func render(block int) string {
	if block == noBlock {
		return "skip"
	}
	return fmt.Sprintf("#%d", block)
}
