// Tcpcluster: the same protocol machines that run in the lock-step
// simulator execute unchanged as separate TCP nodes on localhost. A hub
// process synchronizes the rounds; payloads travel in the repository's
// binary wire format. This is the deployment story: the protocol layer
// never knew it was being simulated.
package main

import (
	"fmt"
	"log"
	"time"

	"proxcensus"
)

func main() {
	const (
		n     = 5
		t     = 2 // t < n/2
		kappa = 12
	)

	setup, err := proxcensus.NewSetup(n, t, proxcensus.CoinThreshold, 99)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	inputs := []int{1, 0, 1, 1, 0}
	proto, err := proxcensus.NewHalf(setup, kappa, inputs)
	if err != nil {
		log.Fatalf("protocol: %v", err)
	}

	fmt.Printf("launching %d TCP nodes for %q: %d synchronous rounds\n", n, proto.Name, proto.Rounds)
	start := time.Now()
	decisions, err := proxcensus.RunLocalTCP(proto)
	if err != nil {
		log.Fatalf("tcp run: %v", err)
	}
	elapsed := time.Since(start)

	fmt.Printf("inputs:    %v\n", inputs)
	fmt.Printf("decisions: %v\n", decisions)
	fmt.Printf("elapsed:   %s (%s/round over real sockets)\n", elapsed, elapsed/time.Duration(proto.Rounds))
	if err := proxcensus.CheckAgreement(decisions); err != nil {
		log.Fatalf("agreement violated: %v", err)
	}
	fmt.Println("agreement: ok")
}
