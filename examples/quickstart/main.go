// Quickstart: seven parties, two of which crash, agree on a bit in
// κ+1 = 21 rounds using the paper's one-shot t < n/3 protocol.
package main

import (
	"fmt"
	"log"

	"proxcensus"
)

func main() {
	const (
		n     = 7  // parties
		t     = 2  // tolerated corruptions (t < n/3)
		kappa = 20 // target error 2^-20
	)

	// Trusted setup: threshold-signature keys and the coin.
	setup, err := proxcensus.NewSetup(n, t, proxcensus.CoinThreshold, 42)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}

	// Build the one-shot protocol: Prox_{2^κ+1} in κ rounds, then ONE
	// multivalued coin flip. κ+1 rounds total — half of fixed-round
	// Feldman-Micali.
	inputs := []int{1, 1, 0, 1, 0, 1, 1}
	proto, err := proxcensus.NewOneShot(setup, kappa, inputs)
	if err != nil {
		log.Fatalf("protocol: %v", err)
	}
	fmt.Printf("one-shot BA: n=%d t=%d kappa=%d -> %d rounds (FM baseline: %d)\n",
		n, t, kappa, proto.Rounds, 2*kappa)

	// Run it against two crashed parties.
	res, err := proto.Run(proxcensus.Crash(0, 3), 7)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	decisions := proxcensus.Decisions(res)
	fmt.Printf("inputs:    %v\n", inputs)
	fmt.Printf("decisions: %v (honest parties, by ID)\n", decisions)
	fmt.Printf("traffic:   %s\n", res.Metrics.String())
	if err := proxcensus.CheckAgreement(decisions); err != nil {
		log.Fatalf("agreement violated: %v", err)
	}
	fmt.Println("agreement: ok")
}
