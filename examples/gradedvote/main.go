// Gradedvote: using s-slot Proxcensus directly as a *graded* decision
// primitive. A replica fleet decides whether to activate an emergency
// read-only mode based on locally observed health signals. Instead of
// full BA, each replica gets a (decision, grade) pair with the paper's
// guarantees: all replicas land on two adjacent slots, any two graded
// replicas agree on the value, and unanimous observations force the top
// grade. High-grade replicas act immediately; grade-0 replicas defer to
// their operator — but no two replicas ever act on conflicting values.
package main

import (
	"fmt"
	"log"
	"strings"

	"proxcensus"
)

// indent prefixes every line of s.
func indent(s, prefix string) string {
	return prefix + strings.ReplaceAll(s, "\n", "\n"+prefix)
}

func main() {
	const (
		n      = 9
		t      = 4 // t < n/2: up to 4 replicas Byzantine
		rounds = 4 // linear family: 2*4-1 = 7 slots, grades 0..3
	)
	setup, err := proxcensus.NewSetup(n, t, proxcensus.CoinIdeal, 7)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	slots, err := proxcensus.ProxLinear.Slots(rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graded vote: n=%d t=%d, %d rounds -> %d slots (grades 0..%d)\n\n",
		n, t, rounds, slots, proxcensus.MaxGrade(slots))

	scenarios := []struct {
		name    string
		signals []int // 1 = replica observed a failure
	}{
		{"all healthy", []int{0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"unanimous failure", []int{1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{"clear majority", []int{1, 1, 0, 1, 0, 1, 1, 0, 1}},
		{"split signals", []int{1, 0, 0, 1, 0, 1, 0, 0, 1}},
	}
	for _, sc := range scenarios {
		exec, err := proxcensus.RunProxcensus(setup, proxcensus.ProxLinear, rounds, sc.signals, proxcensus.Crash(2), 11)
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		results := exec.HonestResults()
		if err := proxcensus.CheckProxConsistency(exec.Slots, results); err != nil {
			log.Fatalf("%s: consistency violated: %v", sc.name, err)
		}
		fmt.Printf("%-18s signals=%v\n", sc.name, sc.signals)
		if line, err := proxcensus.RenderSlotLine(exec.Slots, results); err == nil {
			fmt.Println(indent(line, "  "))
		}
		acted := 0
		for _, r := range results {
			action := "defer to operator"
			if r.Grade >= 1 {
				if r.Value == 1 {
					action = "ACTIVATE read-only mode"
				} else {
					action = "stay read-write"
				}
				acted++
			}
			fmt.Printf("    decision=%d grade=%d -> %s\n", r.Value, r.Grade, action)
		}
		fmt.Printf("  %d/%d replicas acted autonomously; none conflicting\n\n", acted, len(results))
	}
	fmt.Println("the grade is actionable confidence: unanimity gives the top grade,")
	fmt.Println("mixed signals degrade gracefully, and the adjacency guarantee means")
	fmt.Println("a graded replica can act knowing every other graded replica agrees.")
}
